(* Cross-node timeline reconstruction over merged per-node trace rings.

   Everything here is a pure function of a [Trace.record list] (typically
   {!Trace.merge} of every node's ring), so the same code serves the
   simulator, the UDP runtime's /timeline endpoint, the golden tests and
   the bench gates:

   - [by_trace] joins records across nodes by trace id into causal chains
     (ClientReq@client -> P2a@leader -> P2b@follower -> ... -> executed);
   - [duty_cycle] measures the fraction of a window in which a node
     processed anything at all — the paper's "auxiliaries do essentially
     nothing" claim as a number;
   - [engagement_windows] profiles each failover (crash -> aux engaged ->
     new leader elected -> aux quiescent) with message and byte counts per
     phase;
   - [to_chrome] exports Chrome trace-event JSON loadable in Perfetto
     (one process lane per node, one thread lane per trace id). *)

type record = Trace.record

let sort_records (records : record list) =
  List.stable_sort (fun (a : record) (b : record) -> Float.compare a.Trace.at b.Trace.at)
    records

(* ------------------------------------------------------------------ *)
(* Joining by trace id                                                 *)
(* ------------------------------------------------------------------ *)

let by_trace (records : record list) =
  let groups : (int, record list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (r : record) ->
      if r.Trace.tid <> 0 then
        match Hashtbl.find_opt groups r.Trace.tid with
        | Some cell -> cell := r :: !cell
        | None ->
          Hashtbl.add groups r.Trace.tid (ref [ r ]);
          order := r.Trace.tid :: !order)
    (sort_records records);
  List.rev_map (fun tid -> (tid, List.rev !(Hashtbl.find groups tid))) !order

let nodes_of group =
  List.sort_uniq compare (List.map (fun (r : record) -> r.Trace.node) group)

(* ------------------------------------------------------------------ *)
(* Duty cycle                                                          *)
(* ------------------------------------------------------------------ *)

(* Fraction of [bucket]-wide slots in [t0, t1) in which [node] has at least
   one record. With wall-clock records this approximates the fraction of
   time the node spent processing; with virtual-time records it is an event
   density. Either way a quiescent auxiliary scores ~0 and a busy main
   scores ~1, which is the comparison the paper's claim needs. *)
let duty_cycle ?(bucket = 1e-3) ~node ~t0 ~t1 (records : record list) =
  if t1 <= t0 || bucket <= 0. then 0.
  else begin
    let nbuckets = max 1 (int_of_float (Float.ceil ((t1 -. t0) /. bucket))) in
    let occupied = Hashtbl.create 64 in
    List.iter
      (fun (r : record) ->
        if r.Trace.node = node && r.Trace.at >= t0 && r.Trace.at < t1 then
          Hashtbl.replace occupied (int_of_float ((r.Trace.at -. t0) /. bucket)) ())
      records;
    float_of_int (Hashtbl.length occupied) /. float_of_int nbuckets
  end

(* ------------------------------------------------------------------ *)
(* Engagement windows                                                  *)
(* ------------------------------------------------------------------ *)

type engagement = {
  started_at : float;
      (* the crash / step-down that triggered the failover; equals
         [engaged_at] when the trace shows no preceding fault *)
  engaged_at : float; (* first Aux_engaged of the window *)
  engaged_instance : int; (* highest instance pushed to an auxiliary *)
  elected_at : float option; (* first Ballot_won at/after engagement *)
  quiesced_at : float option; (* Aux_quiesced closing the window *)
  msgs_engage : int; (* cluster-wide deliveries, engage -> elect *)
  bytes_engage : int;
  msgs_settle : int; (* cluster-wide deliveries, elect -> quiesce *)
  bytes_settle : int;
  aux_msgs : int; (* deliveries to auxiliaries across the whole window *)
  aux_bytes : int;
}

let engagement_windows ~auxes (records : record list) =
  let records = sort_records records in
  let last_at =
    List.fold_left (fun acc (r : record) -> Float.max acc r.Trace.at) 0. records
  in
  (* Pass 1: window boundaries. *)
  let windows = ref [] in
  let open_ = ref None in
  let last_fault = ref None in
  List.iter
    (fun (r : record) ->
      match r.Trace.ev with
      | Event.Crashed | Event.Stepped_down _ -> last_fault := Some r.Trace.at
      | Event.Aux_engaged { instance } -> begin
        match !open_ with
        | None ->
          let started_at =
            match !last_fault with Some at -> at | None -> r.Trace.at
          in
          open_ := Some (started_at, r.Trace.at, ref instance, ref None)
        | Some (_, _, inst, _) -> inst := max !inst instance
      end
      | Event.Ballot_won _ -> begin
        match !open_ with
        | Some (_, _, _, ({ contents = None } as elected)) ->
          elected := Some r.Trace.at
        | _ -> ()
      end
      | Event.Aux_quiesced _ -> begin
        match !open_ with
        | Some (started_at, engaged_at, inst, elected) ->
          windows := (started_at, engaged_at, !inst, !elected, Some r.Trace.at) :: !windows;
          open_ := None;
          last_fault := None
        | None -> ()
      end
      | _ -> ())
    records;
  (match !open_ with
  | Some (started_at, engaged_at, inst, elected) ->
    windows := (started_at, engaged_at, !inst, !elected, None) :: !windows
  | None -> ());
  (* Pass 2: per-phase traffic. *)
  let count lo hi ~only_aux =
    List.fold_left
      (fun (n, bytes) (r : record) ->
        match r.Trace.ev with
        | Event.Msg_recv { bytes = b; _ }
          when r.Trace.at >= lo && r.Trace.at < hi
               && ((not only_aux) || List.mem r.Trace.node auxes) ->
          (n + 1, bytes + b)
        | _ -> (n, bytes))
      (0, 0) records
  in
  List.rev_map
    (fun (started_at, engaged_at, engaged_instance, elected_at, quiesced_at) ->
      let close = match quiesced_at with Some q -> q | None -> last_at +. 1e-9 in
      let elect = match elected_at with Some e -> e | None -> close in
      let msgs_engage, bytes_engage = count engaged_at elect ~only_aux:false in
      let msgs_settle, bytes_settle = count elect close ~only_aux:false in
      let aux_msgs, aux_bytes = count engaged_at close ~only_aux:true in
      {
        started_at;
        engaged_at;
        engaged_instance;
        elected_at;
        quiesced_at;
        msgs_engage;
        bytes_engage;
        msgs_settle;
        bytes_settle;
        aux_msgs;
        aux_bytes;
      })
    !windows

let pp_engagement ppf e =
  let opt = function Some t -> Printf.sprintf "%.4fs" t | None -> "-" in
  Format.fprintf ppf
    "failover %.4fs: engaged %.4fs (upto %d), elected %s, quiesced %s; \
     engage-phase %d msgs/%dB, settle-phase %d msgs/%dB, aux traffic %d msgs/%dB"
    e.started_at e.engaged_at e.engaged_instance (opt e.elected_at) (opt e.quiesced_at)
    e.msgs_engage e.bytes_engage e.msgs_settle e.bytes_settle e.aux_msgs e.aux_bytes

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON (Perfetto)                                  *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Microseconds with fixed sub-microsecond precision: deterministic text
   for the golden snapshot, enough resolution for simulated timestamps. *)
let ts at = Printf.sprintf "%.3f" (at *. 1e6)

let args_json ev =
  let fields = Event.fields ev in
  if fields = [] then ""
  else
    ",\"args\":{"
    ^ String.concat ","
        (List.map
           (fun (name, v) ->
             match v with
             | `I i -> Printf.sprintf "\"%s\":%d" (escape name) i
             | `S s -> Printf.sprintf "\"%s\":\"%s\"" (escape name) (escape s))
           fields)
    ^ "}"

let to_chrome (records : record list) =
  let records = sort_records records in
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let add line =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n";
    Buffer.add_string b line
  in
  (* One instant event per record: process lane = node, thread lane = trace. *)
  List.iter
    (fun (r : record) ->
      add
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"s\":\"t\"%s}"
           (escape (Event.kind r.Trace.ev))
           (ts r.Trace.at) r.Trace.node r.Trace.tid (args_json r.Trace.ev)))
    records;
  (* One async begin/end pair per causal chain, so Perfetto draws each
     instance/command as a horizontal span. *)
  List.iter
    (fun (tid, group) ->
      match group with
      | [] -> ()
      | (first_r : record) :: _ ->
        let last_r = List.nth group (List.length group - 1) in
        let label =
          Printf.sprintf "trace %x (n%d, %d events, %d nodes)" tid
            (Traceid.origin_of tid) (List.length group)
            (List.length (nodes_of group))
        in
        add
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"trace\",\"ph\":\"b\",\"id\":%d,\"ts\":%s,\"pid\":%d,\"tid\":%d}"
             (escape label) tid (ts first_r.Trace.at) first_r.Trace.node tid);
        add
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"trace\",\"ph\":\"e\",\"id\":%d,\"ts\":%s,\"pid\":%d,\"tid\":%d}"
             (escape label) tid (ts last_r.Trace.at) last_r.Trace.node tid))
    (by_trace records);
  Buffer.add_string b "\n]}\n";
  Buffer.contents b
