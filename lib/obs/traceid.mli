(** Trace identifiers and the per-node ambient trace context.

    A trace id is a plain [int] correlating every event one protocol
    instance / client command causes across the cluster. The runtimes own
    propagation: they stamp the node's {e current} id on emitted records,
    copy it onto outgoing messages, and {!adopt} the id carried by an
    incoming message before invoking the handler. [0] means "no trace". *)

val none : int
(** The null trace id (untraced record / old-format frame). *)

val make : origin:int -> n:int -> int
(** The [n]-th id minted by node [origin]; never 0, never collides across
    origins (for [n] below 2{^24}). *)

val origin_of : int -> int
(** The node that minted an id made by {!make}. *)

val group_stride : int
(** 4096: plain origins below it and namespaced origins at or above it are
    disjoint ranges. *)

val namespace : node:int -> group:int -> int
(** A synthetic origin for replica group [group] hosted on machine [node],
    disjoint from every plain node origin and every other (node, group)
    pair — the fleet mints each group's timer-driven chains from this, so
    {!Obs.Timeline} joins stay unambiguous with many groups per process.
    [group] must be in [0, 4094]. *)

val split_origin : int -> int * int option
(** Invert {!namespace}: [(node, Some group)] for namespaced origins,
    [(origin, None)] for plain ones. *)

type t
(** Mutable per-node context: the current id plus a mint counter. Owned by
    the runtime; survives crash/restart of the node's protocol state. *)

val create : origin:int -> t

val current : t -> int
(** The id to stamp on emissions and sends right now; {!none} if the node
    is outside any traced causal chain. *)

val mint : t -> int
(** Start a fresh trace: bump the counter, set it current, return it. *)

val adopt : t -> int -> unit
(** Enter the causal chain of a delivered message: set its id current, or
    mint a fresh one if the message was untraced ([none]). *)

val set : t -> int -> unit

val clear : t -> unit
(** Back to {!none} — used on crash/restart so stale ids don't leak into
    the next incarnation's records. *)
