let submit_to_chosen = "span.submit_chosen"

let chosen_to_executed = "span.chosen_executed"

let submit_to_executed = "span.submit_executed"

let phases = [ submit_to_chosen; chosen_to_executed; submit_to_executed ]

type t = {
  observe : string -> float -> unit;
  submits : (int * int, float) Hashtbl.t; (* (client, seq) -> submit time *)
  chosen_ : (int, float * float list) Hashtbl.t;
      (* instance -> (chosen time, submit times of its commands) *)
  mutable last_expire : float; (* rate-limits the [expire] scan *)
}

let create ~observe =
  { observe; submits = Hashtbl.create 64; chosen_ = Hashtbl.create 64; last_expire = 0. }

let submitted t ~client ~seq ~at =
  if not (Hashtbl.mem t.submits (client, seq)) then
    Hashtbl.replace t.submits (client, seq) at

let chosen t ~instance ~cmds ~at =
  let starts =
    List.filter_map
      (fun key ->
        match Hashtbl.find_opt t.submits key with
        | Some t0 ->
          Hashtbl.remove t.submits key;
          t.observe submit_to_chosen (at -. t0);
          Some t0
        | None -> None)
      cmds
  in
  Hashtbl.replace t.chosen_ instance (at, starts)

let executed t ~instance ~at =
  match Hashtbl.find_opt t.chosen_ instance with
  | None -> ()
  | Some (chosen_at, starts) ->
    Hashtbl.remove t.chosen_ instance;
    t.observe chosen_to_executed (at -. chosen_at);
    List.iter (fun t0 -> t.observe submit_to_executed (at -. t0)) starts

let pending t = Hashtbl.length t.submits + Hashtbl.length t.chosen_

(* Commands shed from the proposal queue (backpressure) or dropped by the
   dedup check never reach [chosen], so their submit entries would pile up
   forever under sustained overload; same for a chosen instance whose
   execution the leader never witnesses. Age them out. The scan is O(open
   spans) and rate-limited to once per [ttl /. 4] so calling it from every
   tick is free. *)
let expire t ~now ~ttl =
  if now -. t.last_expire < ttl /. 4. then 0
  else begin
    t.last_expire <- now;
    let cutoff = now -. ttl in
    let stale_submits =
      Hashtbl.fold (fun k at acc -> if at < cutoff then k :: acc else acc) t.submits []
    in
    List.iter (Hashtbl.remove t.submits) stale_submits;
    let stale_chosen =
      Hashtbl.fold
        (fun k (at, _) acc -> if at < cutoff then k :: acc else acc)
        t.chosen_ []
    in
    List.iter (Hashtbl.remove t.chosen_) stale_chosen;
    List.length stale_submits + List.length stale_chosen
  end

let reset t =
  Hashtbl.reset t.submits;
  Hashtbl.reset t.chosen_
