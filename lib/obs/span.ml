let submit_to_chosen = "span.submit_chosen"

let chosen_to_executed = "span.chosen_executed"

let submit_to_executed = "span.submit_executed"

let phases = [ submit_to_chosen; chosen_to_executed; submit_to_executed ]

type t = {
  observe : string -> float -> unit;
  submits : (int * int, float) Hashtbl.t; (* (client, seq) -> submit time *)
  chosen_ : (int, float * float list) Hashtbl.t;
      (* instance -> (chosen time, submit times of its commands) *)
}

let create ~observe =
  { observe; submits = Hashtbl.create 64; chosen_ = Hashtbl.create 64 }

let submitted t ~client ~seq ~at =
  if not (Hashtbl.mem t.submits (client, seq)) then
    Hashtbl.replace t.submits (client, seq) at

let chosen t ~instance ~cmds ~at =
  let starts =
    List.filter_map
      (fun key ->
        match Hashtbl.find_opt t.submits key with
        | Some t0 ->
          Hashtbl.remove t.submits key;
          t.observe submit_to_chosen (at -. t0);
          Some t0
        | None -> None)
      cmds
  in
  Hashtbl.replace t.chosen_ instance (at, starts)

let executed t ~instance ~at =
  match Hashtbl.find_opt t.chosen_ instance with
  | None -> ()
  | Some (chosen_at, starts) ->
    Hashtbl.remove t.chosen_ instance;
    t.observe chosen_to_executed (at -. chosen_at);
    List.iter (fun t0 -> t.observe submit_to_executed (at -. t0)) starts

let pending t = Hashtbl.length t.submits + Hashtbl.length t.chosen_

let reset t =
  Hashtbl.reset t.submits;
  Hashtbl.reset t.chosen_
