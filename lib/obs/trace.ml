type record = { at : float; node : int; tid : int; ev : Event.t }

(* Struct-of-arrays ring rather than [record Ring.t]: [emit] sits on the
   simulator's per-delivery hot path, and storing into parallel unboxed
   float/int arrays allocates nothing (a [record] would box [at] and wrap
   in [Some] per event — measurable against the bench's obs-overhead
   gate). Records are materialized only on read. *)
type t = {
  ats : float array;
  nodes : int array;
  tids : int array;
  evs : Event.t array;
  mutable next : int; (* total emits, monotonically increasing *)
  mutable hook : (record -> unit) option;
}

let default_capacity = 16_384

let dummy_ev = Event.Crashed

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    ats = Array.make capacity 0.;
    nodes = Array.make capacity 0;
    tids = Array.make capacity 0;
    evs = Array.make capacity dummy_ev;
    next = 0;
    hook = None;
  }

let emit ?(tid = 0) t ~at ~node ev =
  let i = t.next mod Array.length t.evs in
  t.ats.(i) <- at;
  t.nodes.(i) <- node;
  t.tids.(i) <- tid;
  t.evs.(i) <- ev;
  t.next <- t.next + 1;
  match t.hook with Some f -> f { at; node; tid; ev } | None -> ()

let length t = min t.next (Array.length t.evs)

let records t =
  let cap = Array.length t.evs in
  let n = length t in
  let first = t.next - n in
  List.init n (fun k ->
      let i = (first + k) mod cap in
      { at = t.ats.(i); node = t.nodes.(i); tid = t.tids.(i); ev = t.evs.(i) })

let dropped t = max 0 (t.next - Array.length t.evs)

let clear t =
  (* Drop references to retained events so they can be collected. *)
  Array.fill t.evs 0 (Array.length t.evs) dummy_ev;
  t.next <- 0

let set_hook t f = t.hook <- Some f

let pp_record ppf r =
  if r.tid = 0 then Format.fprintf ppf "%8.4fs  n%d  %a" r.at r.node Event.pp r.ev
  else Format.fprintf ppf "%8.4fs  n%d  [%x]  %a" r.at r.node r.tid Event.pp r.ev

(* ------------------------------------------------------------------ *)
(* JSONL: one flat object per record                                   *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let record_to_json r =
  let b = Buffer.create 96 in
  (* "tid" only when traced, so pre-trace dumps and untraced records keep
     the same shape; the reader below treats a missing "tid" as 0. *)
  if r.tid = 0 then
    Buffer.add_string b (Printf.sprintf "{\"at\":%.6f,\"node\":%d,\"event\":\"%s\"" r.at r.node
                           (escape (Event.kind r.ev)))
  else
    Buffer.add_string b (Printf.sprintf "{\"at\":%.6f,\"node\":%d,\"tid\":%d,\"event\":\"%s\""
                           r.at r.node r.tid (escape (Event.kind r.ev)));
  List.iter
    (fun (name, v) ->
      match v with
      | `I i -> Buffer.add_string b (Printf.sprintf ",\"%s\":%d" (escape name) i)
      | `S s -> Buffer.add_string b (Printf.sprintf ",\"%s\":\"%s\"" (escape name) (escape s)))
    (Event.fields r.ev);
  Buffer.add_char b '}';
  Buffer.contents b

let to_jsonl records =
  let b = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string b (record_to_json r);
      Buffer.add_char b '\n')
    records;
  Buffer.contents b

(* A minimal parser for the flat objects produced above: string and number
   values only, no nesting. Enough for round-tripping our own dumps. *)
let record_of_json line =
  let n = String.length line in
  let pos = ref 0 in
  let error fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do incr pos done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then begin incr pos; Ok () end
    else error "expected %C at %d" c !pos
  in
  let parse_string () =
    skip_ws ();
    if peek () <> Some '"' then error "expected string at %d" !pos
    else begin
      incr pos;
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then error "unterminated string"
        else
          match line.[!pos] with
          | '"' -> incr pos; Ok (Buffer.contents b)
          | '\\' when !pos + 1 < n ->
            (match line.[!pos + 1] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
              if !pos + 5 < n then begin
                let code = int_of_string ("0x" ^ String.sub line (!pos + 2) 4) in
                Buffer.add_char b (Char.chr (code land 0xff));
                pos := !pos + 4
              end
            | c -> Buffer.add_char b c);
            pos := !pos + 2;
            go ()
          | c -> Buffer.add_char b c; incr pos; go ()
      in
      go ()
    end
  in
  let parse_number () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      && (match line.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do incr pos done;
    if !pos = start then error "expected number at %d" start
    else Ok (String.sub line start (!pos - start))
  in
  let ( let* ) = Result.bind in
  let* () = expect '{' in
  let rec members acc =
    skip_ws ();
    match peek () with
    | Some '}' -> incr pos; Ok (List.rev acc)
    | _ ->
      let* key = parse_string () in
      let* () = expect ':' in
      skip_ws ();
      let* value =
        if peek () = Some '"' then
          let* s = parse_string () in
          Ok (`Str s)
        else
          let* num = parse_number () in
          Ok (`Num num)
      in
      skip_ws ();
      (match peek () with
      | Some ',' ->
        incr pos;
        members ((key, value) :: acc)
      | Some '}' -> incr pos; Ok (List.rev ((key, value) :: acc))
      | _ -> error "expected ',' or '}' at %d" !pos)
  in
  let* kvs = members [] in
  let* at =
    match List.assoc_opt "at" kvs with
    | Some (`Num s) ->
      (match float_of_string_opt s with Some f -> Ok f | None -> error "bad at %S" s)
    | _ -> error "missing \"at\""
  in
  let* node =
    match List.assoc_opt "node" kvs with
    | Some (`Num s) ->
      (match int_of_string_opt s with Some i -> Ok i | None -> error "bad node %S" s)
    | _ -> error "missing \"node\""
  in
  let* kind =
    match List.assoc_opt "event" kvs with
    | Some (`Str s) -> Ok s
    | _ -> error "missing \"event\""
  in
  let* tid =
    match List.assoc_opt "tid" kvs with
    | None -> Ok 0
    | Some (`Num s) ->
      (match int_of_string_opt s with Some i -> Ok i | None -> error "bad tid %S" s)
    | Some (`Str _) -> error "bad tid"
  in
  let* fields =
    List.fold_left
      (fun acc (k, v) ->
        let* acc = acc in
        if k = "at" || k = "node" || k = "event" || k = "tid" then Ok acc
        else
          match v with
          | `Str s -> Ok ((k, `S s) :: acc)
          | `Num s ->
            (match int_of_string_opt s with
            | Some i -> Ok ((k, `I i) :: acc)
            | None -> error "non-integer field %S=%S" k s))
      (Ok []) kvs
  in
  let* ev = Event.of_fields ~kind (List.rev fields) in
  Ok { at; node; tid; ev }

let of_jsonl text =
  let lines = String.split_on_char '\n' text in
  List.fold_left
    (fun acc line ->
      match acc with
      | Error _ as e -> e
      | Ok rs ->
        if String.trim line = "" then Ok rs
        else
          match record_of_json line with
          | Ok r -> Ok (r :: rs)
          | Error e -> Error (Printf.sprintf "%s in %S" e line))
    (Ok []) lines
  |> Result.map List.rev

(* ------------------------------------------------------------------ *)
(* Merging per-node traces                                             *)
(* ------------------------------------------------------------------ *)

let merge traces =
  List.concat_map records traces
  |> List.stable_sort (fun a b -> Float.compare a.at b.at)
