module Stats = Cp_util.Stats

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let render ?(prefix = "cp_") ~counters ~summaries () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let metric = prefix ^ sanitize name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" metric metric v))
    counters;
  List.iter
    (fun (name, (s : Stats.summary)) ->
      let metric = prefix ^ sanitize name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" metric);
      List.iter
        (fun (q, v) ->
          Buffer.add_string b
            (Printf.sprintf "%s{quantile=\"%s\"} %s\n" metric q (float_str v)))
        [ ("0.5", s.Stats.p50); ("0.9", s.Stats.p90); ("0.99", s.Stats.p99) ];
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" metric s.Stats.count);
      Buffer.add_string b
        (Printf.sprintf "%s_sum %s\n" metric
           (float_str (s.Stats.mean *. float_of_int s.Stats.count))))
    summaries;
  Buffer.contents b
