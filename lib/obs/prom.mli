(** Prometheus-style plaintext exposition of a metrics snapshot.

    Counters render as [# TYPE <m> counter] plus a single sample; series
    summaries render as Prometheus summaries (p50/p90/p99 quantile samples
    plus [_count] and [_sum]). Names are sanitized to the Prometheus
    charset and prefixed (default ["cp_"]). The output is what a
    [/metrics] endpoint would serve; the UDP runtime exposes it via
    {!Cp_netio.Node.metrics_text}. *)

val render :
  ?prefix:string ->
  counters:(string * int) list ->
  summaries:(string * Cp_util.Stats.summary) list ->
  unit ->
  string

val sanitize : string -> string
(** Replace characters outside [[a-zA-Z0-9_]] with ['_']. *)
