module Engine = Cp_sim.Engine
module Types = Cp_proto.Types

module type S = sig
  type t

  val self : t -> int

  val now : t -> float

  val send : t -> dst:int -> Types.msg -> unit

  val set_timer : t -> ?tag:string -> float -> int

  val cancel_timer : t -> int -> unit

  val rng : t -> Cp_util.Rng.t

  val stable : t -> Cp_sim.Stable.t

  val metrics : t -> Cp_sim.Metrics.t

  val emit : t -> Cp_obs.Event.t -> unit

  val tctx : t -> Cp_obs.Traceid.t
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed

let ctx (Packed ((module T), h)) =
  {
    Engine.self = T.self h;
    now = (fun () -> T.now h);
    send = (fun dst msg -> T.send h ~dst msg);
    set_timer = (fun ?tag delay -> T.set_timer h ?tag delay);
    cancel_timer = (fun tid -> T.cancel_timer h tid);
    rng = T.rng h;
    stable = T.stable h;
    metrics = T.metrics h;
    emit = (fun ev -> T.emit h ev);
    tctx = T.tctx h;
  }

module Sim = struct
  type t = Types.msg Engine.ctx

  let self (c : t) = c.Engine.self

  let now (c : t) = c.Engine.now ()

  let send (c : t) ~dst msg = c.Engine.send dst msg

  let set_timer (c : t) ?tag delay = c.Engine.set_timer ?tag delay

  let cancel_timer (c : t) tid = c.Engine.cancel_timer tid

  let rng (c : t) = c.Engine.rng

  let stable (c : t) = c.Engine.stable

  let metrics (c : t) = c.Engine.metrics

  let emit (c : t) ev = c.Engine.emit ev

  let tctx (c : t) = c.Engine.tctx
end

let of_ctx c = Packed ((module Sim), c)
