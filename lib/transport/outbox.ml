module Codec = Cp_proto.Codec

(* Per-destination buffer in packed-datagram layout: byte 0 is the packed
   marker, then per frame a 2-byte little-endian length and the frame
   itself. [b_len] is the fill point; [b_frames] counts frames since the
   last flush. *)
type dstbuf = { b_buf : Bytes.t; mutable b_len : int; mutable b_frames : int }

type t = {
  cap : int;
  send : dst:int -> Bytes.t -> off:int -> len:int -> unit;
  bufs : (int, dstbuf) Hashtbl.t;
  mutable dirty : int list; (* dsts with b_frames > 0, unordered *)
}

let create ?(capacity = 61440) ~send () =
  let cap = min 65507 (max 512 capacity) in
  { cap; send; bufs = Hashtbl.create 8; dirty = [] }

(* [Hashtbl.find] rather than [find_opt]: the steady-state hit allocates
   nothing (no [Some] box) — this is once per frame on the wire path. *)
let buf_for t dst =
  match Hashtbl.find t.bufs dst with
  | b -> b
  | exception Not_found ->
    let b = { b_buf = Bytes.create t.cap; b_len = 1; b_frames = 0 } in
    Bytes.set b.b_buf 0 Codec.packed_marker;
    Hashtbl.replace t.bufs dst b;
    b

let flush_buf t dst b =
  if b.b_frames = 1 then
    (* Strip marker + length header: a lone frame goes out bare, exactly the
       bytes an unbatched sender would have produced. *)
    t.send ~dst b.b_buf ~off:3 ~len:(b.b_len - 3)
  else if b.b_frames > 1 then t.send ~dst b.b_buf ~off:0 ~len:b.b_len;
  b.b_len <- 1;
  b.b_frames <- 0

let flush t =
  match t.dirty with
  | [] -> ()
  | dirty ->
    t.dirty <- [];
    List.iter
      (fun dst ->
        match Hashtbl.find_opt t.bufs dst with
        | Some b when b.b_frames > 0 -> flush_buf t dst b
        | _ -> ())
      (List.sort_uniq compare dirty)

(* The fast path allocates only the (amortized) dirty-list cons: the retry
   is a tail call rather than a [try]-wrapped closure. After [flush_buf]
   the buffer is empty ([b_frames = 0]), so a frame that still does not
   fit fails the [when] guard and Overflow propagates to the caller; the
   dirty entry for [dst] may linger across the flush — harmless, [flush]
   skips clean buffers. *)
let rec append t ~dst ~encode =
  let b = buf_for t dst in
  (* Reserve the 2-byte length slot, encode, then backfill the length. *)
  let fpos = b.b_len + 2 in
  if fpos > t.cap then begin
    if b.b_frames = 0 then raise Codec.Overflow;
    flush_buf t dst b;
    append t ~dst ~encode
  end
  else
    match encode b.b_buf ~pos:fpos with
    | stop ->
      (* cap <= 65507 < 0xffff, so the length always fits its 16-bit slot. *)
      let flen = stop - fpos in
      Bytes.set b.b_buf b.b_len (Char.chr (flen land 0xff));
      Bytes.set b.b_buf (b.b_len + 1) (Char.chr ((flen lsr 8) land 0xff));
      if b.b_frames = 0 then t.dirty <- dst :: t.dirty;
      b.b_len <- stop;
      b.b_frames <- b.b_frames + 1;
      flen
    | exception Codec.Overflow when b.b_frames > 0 ->
      flush_buf t dst b;
      append t ~dst ~encode

let pending t =
  List.length
    (List.filter
       (fun dst ->
         match Hashtbl.find_opt t.bufs dst with
         | Some b -> b.b_frames > 0
         | None -> false)
       (List.sort_uniq compare t.dirty))
