(** Flush-coalescing per-destination send buffers.

    One [Core.step] typically emits a burst of messages — phase-2 rounds
    fan a [P2a] to every acceptor, commits chase them — and sending each as
    its own datagram costs one syscall per message. An outbox accumulates
    the burst instead: {!append} serializes each frame {e zero-copy} into a
    preallocated per-destination buffer (packed-datagram layout, see
    {!Cp_proto.Codec.decode_frames}), and {!flush} hands each dirty buffer
    to the [send] callback once — one syscall per peer per step, iovec-style
    buffer chaining without the iovec.

    A buffer holding a {e single} frame is flushed bare (packing prefix and
    length header stripped), byte-identical to the unbatched wire format,
    so packing costs nothing when there is nothing to coalesce.

    Not thread-safe: one outbox per sender, under the sender's lock — the
    same discipline as {!Cp_proto.Codec.scratch}. *)

type t

val create : ?capacity:int -> send:(dst:int -> Bytes.t -> off:int -> len:int -> unit) -> unit -> t
(** [capacity] (default 61440, clamped to [512, 65507]) bounds one packed
    datagram; 65507 is the maximum UDP payload and every frame length must
    fit the 16-bit packing header. [send] transmits one wire datagram; it
    must not re-enter the outbox for the same destination. *)

val append : t -> dst:int -> encode:(Bytes.t -> pos:int -> int) -> int
(** Serialize one frame into [dst]'s buffer via [encode buf ~pos] (which
    returns the end position — the {!Cp_proto.Codec.encode_into} contract)
    and return the frame's byte length. If the buffer is full, it is flushed
    first and the encode retried into the empty buffer; a frame too large
    even for an empty buffer raises {!Cp_proto.Codec.Overflow} (the caller
    falls back to its own path and accounts the copy). *)

val flush : t -> unit
(** Transmit every destination buffer with pending frames, in ascending
    destination order (deterministic), and reset them. No-op when nothing
    pends — call it unconditionally after every handler invocation. *)

val pending : t -> int
(** Number of destinations with unflushed frames (for tests). *)
