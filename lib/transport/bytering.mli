(** Bounded single-producer single-consumer {e byte} ring.

    The in-process transport's wire: variable-length records written
    zero-copy (the producer's encoder serializes straight into the ring's
    backing bytes) and consumed in place (the reader gets a window into the
    same bytes, no per-record substring). Same ownership discipline as
    {!Cp_exec.Spsc}: indices grow monotonically, producer owns the tail,
    consumer owns the head, each reads the other's index with a
    sequentially-consistent [Atomic.get] — so one producer domain and one
    consumer domain need no lock. Single-threaded use is just the
    degenerate case.

    Records never wrap: a record that does not fit contiguously before the
    end of the buffer is preceded by a skip marker and placed at the start,
    so the consumer always sees each record as one contiguous byte range. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 65536, rounded up to a power of two, min 256) is
    the buffer size in bytes; usable record payloads are capped at
    [capacity/2 - 2] and 65534, whichever is smaller. *)

val capacity : t -> int

val max_record : t -> int
(** Largest payload [write] can accept. *)

val is_empty : t -> bool

val write : t -> max:int -> f:(Bytes.t -> pos:int -> int) -> int option
(** [write t ~max ~f] reserves [max] contiguous bytes, calls [f buf ~pos]
    to serialize a record of at most [max] bytes at [pos], and commits
    exactly the [f]'s-return-value minus [pos] bytes it wrote, returning
    [Some length]. Returns [None] without calling [f] when [max] exceeds
    {!max_record} or the ring lacks room (the caller counts a drop or backs
    off). If [f] raises, nothing is committed and the exception passes
    through. *)

val read : t -> f:(Bytes.t -> pos:int -> len:int -> unit) -> bool
(** Consume one record: calls [f] with a window into the ring's own buffer
    (valid only for the duration of the call — the producer may overwrite
    it after [f] returns) and returns [true]; [false] when empty. *)
