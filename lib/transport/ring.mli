(** In-process ring-buffer transport: same-machine endpoints wired by SPSC
    byte rings.

    The third {!Transport.S} instance, for fleet groups co-hosted in one
    process: each (src, dst) pair gets a {!Bytering} on demand, sends
    serialize {e zero-copy} into the ring ({!Cp_proto.Codec.encode_into}
    straight into the ring's backing bytes — no intermediate string, no
    syscall at all), and {!pump} drains every ring in deterministic order,
    decoding records in place and dispatching to the destination's
    handlers. Timers ride a {!Cp_fleet.Wheel} under the fabric's virtual
    clock, so a run is a pure function of the endpoints' inputs — the
    property the transport-conformance suite leans on.

    The fabric is single-threaded by design (one pumper); the rings
    themselves are SPSC-safe, so a future multi-domain pumper can split
    endpoints across domains without changing the wire. *)

type t
(** The fabric: links, clock, timer wheel, endpoints. *)

type endpoint

val create :
  ?ring_capacity:int -> ?seed:int -> ?storage:(int -> Cp_sim.Stable.t) -> unit -> t
(** [ring_capacity] (default 65536) sizes each link's byte ring; [seed]
    (default 1) roots every endpoint's RNG stream. [storage] supplies each
    endpoint's stable store at {!add_node} time, keyed by endpoint id
    (default: a fresh in-memory store per endpoint). *)

val add_node :
  t ->
  id:int ->
  build:(Cp_proto.Types.msg Cp_sim.Engine.ctx -> Cp_proto.Types.msg Cp_sim.Engine.handlers) ->
  unit
(** Register an endpoint: [build] receives the capability record (closed
    over this transport via {!Transport.ctx}) and returns its handlers —
    the same builder shape {!Cp_sim.Engine.add_node} and
    {!Cp_netio.Node.create} take, so the one replica/client builder runs on
    all three transports. *)

val endpoint : t -> int -> endpoint

val transport : endpoint -> Transport.packed
(** The endpoint as a packed transport instance (what {!add_node} builds
    the ctx from). *)

val now : t -> float

val pump : t -> int
(** Drain every link once, in ascending (src, dst) order: decode and
    dispatch each pending record at the current virtual time. Returns the
    number of messages delivered (0 = quiescent). Handler sends during a
    pump land in the rings and are picked up by the next pass. *)

val run : ?until:float -> t -> unit
(** Advance the fabric: alternate {!pump} passes with firing due timers,
    moving the virtual clock from deadline to deadline, until both the
    rings and the wheel are quiescent (or the clock would pass [until],
    default 60 virtual seconds — a livelock guard). *)

val metrics : t -> int -> Cp_sim.Metrics.t

val trace : t -> int -> Cp_obs.Trace.t

val stable : t -> int -> Cp_sim.Stable.t
