(** The transport signature: what a runtime must provide to host a replica.

    {!Cp_engine.Replica} consumes the capability record {!Cp_sim.Engine.ctx}
    — sends, timers, stable storage, metrics, event emission, an RNG, and a
    causal trace context. This module names that contract as a first-class
    module signature so runtimes are interchangeable {e instances} rather
    than hand-rolled record fabricators: the deterministic simulator
    ({!Sim}), the UDP node ({!Cp_netio.Node.Udp_transport}), and the
    in-process ring fabric ({!Ring}) all implement {!S}, and any future
    transport (TCP, io_uring/eio) drops in the same way. {!ctx} closes an
    instance back into the record the replica expects, so the engine layer
    is untouched. *)

module type S = sig
  type t
  (** One endpoint's handle: everything the transport needs to serve the
      capabilities below for a single hosted protocol instance. *)

  val self : t -> int

  val now : t -> float

  val send : t -> dst:int -> Cp_proto.Types.msg -> unit
  (** Fire-and-forget, at-most-once: transports may drop (unreachable peer,
      full ring) but never duplicate on their own or block the caller. *)

  val set_timer : t -> ?tag:string -> float -> int
  (** Arm a one-shot timer [delay] seconds from [now]; returns a timer id
      unique within this endpoint. *)

  val cancel_timer : t -> int -> unit

  val rng : t -> Cp_util.Rng.t
  (** Persistent across restarts of the hosted instance. *)

  val stable : t -> Cp_sim.Stable.t
  (** Persistent across restarts of the hosted instance. *)

  val metrics : t -> Cp_sim.Metrics.t

  val emit : t -> Cp_obs.Event.t -> unit
  (** Record a typed protocol event, stamped with this transport's notion of
      time and the endpoint's current trace id. *)

  val tctx : t -> Cp_obs.Traceid.t
  (** The endpoint's ambient causal trace context (see {!Cp_obs.Traceid}). *)
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed
(** An endpoint paired with its transport — the value a runtime hands to
    whoever builds the replica. *)

val ctx : packed -> Cp_proto.Types.msg Cp_sim.Engine.ctx
(** Close a transport instance into the capability record the engine layer
    consumes. Every field is a thin forwarder; no behaviour is added. *)

module Sim : S with type t = Cp_proto.Types.msg Cp_sim.Engine.ctx
(** The deterministic simulator as a transport instance: the engine's ctx
    record already {e is} one, so the handle is the record itself. *)

val of_ctx : Cp_proto.Types.msg Cp_sim.Engine.ctx -> packed
(** Pack a simulator ctx as a transport ([ctx (of_ctx c)] behaves as [c]). *)
