module Types = Cp_proto.Types
module Codec = Cp_proto.Codec
module Engine = Cp_sim.Engine
module Metrics = Cp_sim.Metrics
module Wheel = Cp_fleet.Wheel
module Obs = Cp_obs

type endpoint = {
  e_id : int;
  e_fab : fabric;
  e_rng : Cp_util.Rng.t;
  e_stable : Cp_sim.Stable.t;
  e_metrics : Metrics.t;
  e_trace : Obs.Trace.t;
  e_tctx : Obs.Traceid.t;
  mutable e_handlers : Types.msg Engine.handlers;
}

and fabric = {
  ring_capacity : int;
  seed : int;
  links : (int * int, Bytering.t) Hashtbl.t; (* (src, dst) -> ring *)
  endpoints : (int, endpoint) Hashtbl.t;
  wheel : (int * string) Wheel.t; (* payload: (node, tag) *)
  storage : int -> Cp_sim.Stable.t; (* per-endpoint store factory *)
  mutable time : float;
}

type t = fabric

let create ?(ring_capacity = 65536) ?(seed = 1)
    ?(storage = fun _ -> Cp_sim.Stable.create ()) () =
  {
    ring_capacity;
    seed;
    links = Hashtbl.create 16;
    endpoints = Hashtbl.create 8;
    wheel = Wheel.create ~now:0. ();
    storage;
    time = 0.;
  }

let now fab = fab.time

let link fab src dst =
  match Hashtbl.find_opt fab.links (src, dst) with
  | Some r -> r
  | None ->
    let r = Bytering.create ~capacity:fab.ring_capacity () in
    Hashtbl.replace fab.links (src, dst) r;
    r

let emit_ev ep ev =
  let dropped0 = Obs.Trace.dropped ep.e_trace in
  Obs.Trace.emit
    ~tid:(Obs.Traceid.current ep.e_tctx)
    ep.e_trace ~at:ep.e_fab.time ~node:ep.e_id ev;
  if Obs.Trace.dropped ep.e_trace > dropped0 then Metrics.incr ep.e_metrics "ring_dropped"

let guard ep ~where f =
  try f ()
  with exn ->
    Metrics.incr ep.e_metrics "handler_errors";
    emit_ev ep
      (Obs.Event.Debug (Printf.sprintf "%s raised: %s" where (Printexc.to_string exn)))

(* Zero-copy send: serialize the traced frame straight into the link's ring
   ([Codec.encode_traced_into] at the ring's write cursor) — no intermediate
   string, no syscall. The reservation uses {!Types.size_of} (an estimate)
   plus margin; if the encoder still overruns it, retry once with the ring's
   whole record budget before counting a drop. *)
let send_ep ep ~dst msg =
  let fab = ep.e_fab in
  let tid =
    match Types.classify msg with
    | "client_req" | "client_read" -> Obs.Traceid.mint ep.e_tctx
    | _ -> Obs.Traceid.current ep.e_tctx
  in
  let kind = Types.classify msg in
  Metrics.incr ep.e_metrics "msgs_sent";
  Metrics.incr ep.e_metrics ("sent." ^ kind);
  let ring = link fab ep.e_id dst in
  let encode buf ~pos = Codec.encode_traced_into buf ~pos ~tid msg in
  let attempt max = Bytering.write ring ~max ~f:encode in
  let written =
    let budget = Bytering.max_record ring in
    match attempt (min budget (Types.size_of msg + 128)) with
    | r -> r
    | exception Codec.Overflow -> ( match attempt budget with r -> r | exception Codec.Overflow -> None)
  in
  match written with
  | Some len ->
    Metrics.incr ep.e_metrics ~by:len "bytes_sent";
    Metrics.incr ep.e_metrics ~by:len "encoded_bytes";
    Metrics.incr ep.e_metrics ~by:len "wire_bytes"
  | None -> Metrics.incr ep.e_metrics "wire_drops"

module Endpoint : Transport.S with type t = endpoint = struct
  type t = endpoint

  let self ep = ep.e_id

  let now ep = ep.e_fab.time

  let send = send_ep

  let set_timer ep ?(tag = "") delay =
    Wheel.add ep.e_fab.wheel ~at:(ep.e_fab.time +. Float.max 0. delay) (ep.e_id, tag)

  let cancel_timer ep wid = Wheel.cancel ep.e_fab.wheel wid

  let rng ep = ep.e_rng

  let stable ep = ep.e_stable

  let metrics ep = ep.e_metrics

  let emit = emit_ev

  let tctx ep = ep.e_tctx
end

let endpoint fab id =
  match Hashtbl.find_opt fab.endpoints id with
  | Some ep -> ep
  | None -> invalid_arg (Printf.sprintf "Ring.endpoint: unknown id %d" id)

let transport ep = Transport.Packed ((module Endpoint), ep)

let add_node fab ~id ~build =
  if Hashtbl.mem fab.endpoints id then
    invalid_arg (Printf.sprintf "Ring.add_node: duplicate id %d" id);
  let ep =
    {
      e_id = id;
      e_fab = fab;
      e_rng = Cp_util.Rng.create ((fab.seed * 1009) + id);
      e_stable = fab.storage id;
      e_metrics = Metrics.create ();
      e_trace = Obs.Trace.create ();
      e_tctx = Obs.Traceid.create ~origin:id;
      e_handlers =
        { Engine.on_message = (fun ~src:_ _ -> ()); on_timer = (fun ~tid:_ ~tag:_ -> ()) };
    }
  in
  Hashtbl.replace fab.endpoints id ep;
  ep.e_handlers <- build (Transport.ctx (transport ep))

(* Deliver one ring record: decode the traced frame in place (the record is
   a window into the ring's own bytes; [Bytes.unsafe_to_string] is safe here
   because the fabric is single-threaded and nothing writes the ring within
   this dynamic extent) and run the destination handler. *)
let deliver fab ~src ~dst delivered buf ~pos ~len =
  match Hashtbl.find_opt fab.endpoints dst with
  | None -> () (* no such endpoint: drop *)
  | Some ep -> (
    let s = Bytes.unsafe_to_string buf in
    match Codec.decode_grouped_sub s ~pos ~stop:(pos + len) with
    | Error _ -> () (* corrupt record: drop *)
    | Ok (_gid, msg, tid) ->
      incr delivered;
      let kind = Types.classify msg in
      Metrics.incr ep.e_metrics "msgs_recv";
      Metrics.incr ep.e_metrics ~by:len "bytes_recv";
      Metrics.incr ep.e_metrics ("recv." ^ kind);
      Obs.Traceid.adopt ep.e_tctx tid;
      emit_ev ep (Obs.Event.Msg_recv { src; kind; bytes = len });
      guard ep ~where:("on_message " ^ kind) (fun () ->
          ep.e_handlers.Engine.on_message ~src msg))

let pump fab =
  let keys =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) fab.links [])
  in
  let delivered = ref 0 in
  List.iter
    (fun (src, dst) ->
      let ring = Hashtbl.find fab.links (src, dst) in
      while Bytering.read ring ~f:(deliver fab ~src ~dst delivered) do
        ()
      done)
    keys;
  !delivered

let fire fab wid (node, tag) =
  match Hashtbl.find_opt fab.endpoints node with
  | None -> () (* endpoint removed: stale timer *)
  | Some ep ->
    (* A timer step starts a fresh causal chain, as in the sim and UDP
       runtimes. *)
    ignore (Obs.Traceid.mint ep.e_tctx);
    guard ep ~where:(Printf.sprintf "on_timer %S" tag) (fun () ->
        ep.e_handlers.Engine.on_timer ~tid:wid ~tag)

let run ?(until = 60.) fab =
  let rec loop () =
    while pump fab > 0 do
      ()
    done;
    match Wheel.next_deadline fab.wheel with
    | Some d when d <= until ->
      fab.time <- Float.max fab.time d;
      Wheel.advance fab.wheel ~now:fab.time ~fire:(fun wid p -> fire fab wid p);
      loop ()
    | _ -> if pump fab > 0 then loop ()
  in
  loop ()

let metrics fab id = (endpoint fab id).e_metrics

let trace fab id = (endpoint fab id).e_trace

let stable fab id = (endpoint fab id).e_stable
