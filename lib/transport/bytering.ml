(* Record layout: 2-byte little-endian payload length, then the payload,
   always contiguous. When the gap before the end of the buffer is too
   small for the next record, the producer parks a skip marker (length
   0xffff) — or, if not even the 2 marker bytes fit, leaves the tail bytes
   as implicit padding — and continues at offset 0; the consumer applies
   the same two rules. 0xffff can never be a real length because payloads
   are capped at 65534. *)

type t = {
  buf : Bytes.t;
  mask : int;
  head : int Atomic.t; (* consumer: offset of the next record to read *)
  tail : int Atomic.t; (* producer: offset of the next record to write *)
}

let skip_marker = 0xffff

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(capacity = 65536) () =
  let cap = pow2 (max 256 capacity) 256 in
  {
    buf = Bytes.create cap;
    mask = cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = Bytes.length t.buf

(* Half the buffer, so a maximal record plus a skip never exceeds the free
   space computable from one head reading; and 65534 so the length always
   fits the 16-bit header with 0xffff left over for the marker. *)
let max_record t = min ((capacity t / 2) - 2) 0xfffe

let is_empty t = Atomic.get t.head >= Atomic.get t.tail

let set16 b off v =
  Bytes.unsafe_set b off (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xff))

let get16 b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let write t ~max ~f =
  if max < 0 || max > max_record t then None
  else begin
    let cap = Bytes.length t.buf in
    let head = Atomic.get t.head in
    let tail = Atomic.get t.tail in
    let off = tail land t.mask in
    let room_to_end = cap - off in
    let need = 2 + max in
    if room_to_end >= need then
      if cap - (tail - head) < need then None
      else begin
        let stop = f t.buf ~pos:(off + 2) in
        let len = stop - (off + 2) in
        set16 t.buf off len;
        Atomic.set t.tail (tail + 2 + len);
        Some len
      end
    else if cap - (tail - head) < room_to_end + need then None
    else begin
      (* Park a marker (or bare padding when < 2 bytes remain) and wrap. *)
      if room_to_end >= 2 then set16 t.buf off skip_marker;
      let stop = f t.buf ~pos:2 in
      let len = stop - 2 in
      set16 t.buf 0 len;
      Atomic.set t.tail (tail + room_to_end + 2 + len);
      Some len
    end
  end

let read t ~f =
  let rec go () =
    let head = Atomic.get t.head in
    let tail = Atomic.get t.tail in
    if head >= tail then false
    else begin
      let cap = Bytes.length t.buf in
      let off = head land t.mask in
      let room_to_end = cap - off in
      if room_to_end < 2 then begin
        Atomic.set t.head (head + room_to_end);
        go ()
      end
      else begin
        let len = get16 t.buf off in
        if len = skip_marker then begin
          Atomic.set t.head (head + room_to_end);
          go ()
        end
        else begin
          f t.buf ~pos:(off + 2) ~len;
          Atomic.set t.head (head + 2 + len);
          true
        end
      end
    end
  in
  go ()
