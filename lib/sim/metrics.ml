type t = {
  counters : (string, int ref) Hashtbl.t;
  series : (string, float list ref) Hashtbl.t; (* reversed *)
}

let create () = { counters = Hashtbl.create 32; series = Hashtbl.create 8 }

let incr t ?(by = 1) name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let observe t name x =
  match Hashtbl.find_opt t.series name with
  | Some r -> r := x :: !r
  | None -> Hashtbl.add t.series name (ref [ x ])

let series t name =
  match Hashtbl.find_opt t.series name with Some r -> List.rev !r | None -> []

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.series

let sum_matching t ~prefix =
  Hashtbl.fold
    (fun k r acc -> if String.starts_with ~prefix k then acc + !r else acc)
    t.counters 0

type snapshot = {
  counters : (string * int) list;
  summaries : (string * Cp_util.Stats.summary) list;
}

let snapshot t =
  let summaries =
    Hashtbl.fold (fun k r acc -> (k, Cp_util.Stats.summarize (List.rev !r)) :: acc) t.series []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { counters = counters t; summaries }
