(** Simulated per-node stable storage.

    Paxos acceptors must persist promises and votes across crashes; main
    processors also persist their log. Since the storage refactor this is a
    thin alias over {!Cp_storage.Storage}: [create] returns the in-memory
    backend (contents survive {!Engine.crash}/{!Engine.restart}; every
    write is counted for E5's stable-storage accounting), and runtimes can
    swap in the group-commit WAL ({!Cp_storage.Wal}) through
    {!Engine.create}'s storage factory without touching any call site.

    Values are bytes. The engine's persistence path encodes acceptor
    images, log entries, and snapshots with the typed versioned codecs in
    {!Cp_proto.Codec} — [Marshal] is gone from the durable path. *)

type t = Cp_storage.Storage.t

val create : unit -> t
(** A fresh in-memory root view ({!Cp_storage.Mem}). *)

val sub : t -> name:string -> t
(** A namespaced view of the same disk: keys written through the view are
    invisible to the parent (and to sibling views with other names), but
    live on the parent's device, so they share its crash/restart lifetime —
    except {!wipe} of the {e root}, which erases every view. Used by the
    fleet to give each replica group hosted on a machine its own logical
    store. [name] must not contain a NUL byte. Write counters are per-view
    and stable across re-derivation of the same name. *)

val put : t -> string -> string -> unit
(** Persist bytes under [key], overwriting any previous value. Durable
    after the next {!flush}. *)

val get : t -> string -> string option

val remove : t -> string -> unit

val mem : t -> string -> bool

val keys : t -> string list

val flush : t -> unit
(** Make every preceding [put]/[remove] durable. The effect interpreter
    calls this once per effect batch (group commit); a no-op in memory. *)

val bytes_used : t -> int
(** Current footprint: sum of live value bytes in this view. *)

val write_count : t -> int
(** Total number of [put] calls through this view. *)

val bytes_written : t -> int
(** Total value bytes across those puts (write traffic). *)

val wipe : t -> unit
(** Erase everything — models a disk loss / replacement machine. *)

val close : t -> unit
(** Release OS resources (no-op in memory). *)

val backend : t -> string

val stats : t -> Cp_storage.Storage.stats

val counter_list : t -> (string * int) list
(** Storage stats as metric counters for Prometheus surfaces. *)
