(** Simulated per-node stable storage.

    Paxos acceptors must persist promises and votes across crashes; main
    processors also persist their log. This module models a disk: contents
    survive {!Engine.crash}/{!Engine.restart}, and every write is counted so
    experiments can report stable-storage traffic and footprint (the paper's
    claim that auxiliaries need only a small amount of storage, E5).

    Values are stored via [Marshal]; [get] is only type-safe if the caller
    reads back at the type it wrote — standard practice for this kind of
    in-process store, and all call sites live in this repository. *)

type t

val create : unit -> t

val sub : t -> name:string -> t
(** A namespaced view of the same disk: keys written through the view are
    invisible to the parent (and to sibling views with other names), but
    live in the parent's table, so they share its crash/restart lifetime —
    except {!wipe} of the {e root}, which erases every view. Used by the
    fleet to give each replica group hosted on a machine its own logical
    store. [name] must not contain a NUL byte. Write counters are
    per-view. *)

val put : t -> string -> 'a -> unit
(** Persist [v] under [key], overwriting any previous value. *)

val get : t -> string -> 'a option

val remove : t -> string -> unit

val mem : t -> string -> bool

val keys : t -> string list

val bytes_used : t -> int
(** Current footprint: sum of serialized sizes of all live keys. *)

val write_count : t -> int
(** Total number of [put] calls over the node's lifetime. *)

val bytes_written : t -> int
(** Total serialized bytes across all [put] calls (write traffic). *)

val wipe : t -> unit
(** Erase everything — models a disk loss / replacement machine. *)
