type t = {
  data : (string, string) Hashtbl.t;
  prefix : string; (* "" for the root store; see [sub] *)
  mutable writes : int;
  mutable traffic : int;
}

let create () = { data = Hashtbl.create 16; prefix = ""; writes = 0; traffic = 0 }

(* A namespaced view sharing the root's table, so many logical stores (one
   per replica group on a machine) live on one "disk" and survive together
   across crash/restart. The separator byte cannot appear in a view name,
   so namespaces cannot collide by concatenation. Write counters are
   per-view: each group's storage traffic is observable on its own. *)
let sub t ~name =
  if String.contains name '\x00' then invalid_arg "Stable.sub: name contains NUL";
  { data = t.data; prefix = t.prefix ^ name ^ "\x00"; writes = 0; traffic = 0 }

let key t k = t.prefix ^ k

let put t k v =
  let s = Marshal.to_string v [] in
  Hashtbl.replace t.data (key t k) s;
  t.writes <- t.writes + 1;
  t.traffic <- t.traffic + String.length s

let get t k =
  match Hashtbl.find_opt t.data (key t k) with
  | None -> None
  | Some s -> Some (Marshal.from_string s 0)

let remove t k = Hashtbl.remove t.data (key t k)

let mem t k = Hashtbl.mem t.data (key t k)

let in_view t k =
  String.length k >= String.length t.prefix
  && String.sub k 0 (String.length t.prefix) = t.prefix

let strip t k = String.sub k (String.length t.prefix) (String.length k - String.length t.prefix)

let keys t =
  Hashtbl.fold (fun k _ acc -> if in_view t k then strip t k :: acc else acc) t.data []
  |> List.sort String.compare

let bytes_used t =
  Hashtbl.fold (fun k s acc -> if in_view t k then acc + String.length s else acc) t.data 0

let write_count t = t.writes

let bytes_written t = t.traffic

let wipe t =
  if t.prefix = "" then Hashtbl.reset t.data
  else begin
    let doomed =
      Hashtbl.fold (fun k _ acc -> if in_view t k then k :: acc else acc) t.data []
    in
    List.iter (Hashtbl.remove t.data) doomed
  end
