(* Simulated per-node stable storage — now a thin alias over the pluggable
   {!Cp_storage.Storage} layer. [create] gives the in-memory instance the
   simulator has always used; runtimes can hand {!Engine.create} a factory
   that opens a WAL instead, and every call site below keeps reading like
   the old API. Values are bytes: typed encoding moved up into the
   stable-record codecs ({!Cp_proto.Codec}). *)

type t = Cp_storage.Storage.t

let create () = Cp_storage.Mem.store ()

let sub = Cp_storage.Storage.sub

let put = Cp_storage.Storage.put

let get = Cp_storage.Storage.get

let remove = Cp_storage.Storage.remove

let mem = Cp_storage.Storage.mem

let keys = Cp_storage.Storage.keys

let flush = Cp_storage.Storage.flush

let bytes_used = Cp_storage.Storage.bytes_used

let write_count = Cp_storage.Storage.write_count

let bytes_written = Cp_storage.Storage.bytes_written

let wipe = Cp_storage.Storage.wipe

let close = Cp_storage.Storage.close

let backend = Cp_storage.Storage.backend

let stats = Cp_storage.Storage.stats

let counter_list = Cp_storage.Storage.counter_list
