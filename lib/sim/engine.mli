(** Deterministic discrete-event engine.

    Nodes (replicas {e and} clients) are registered with a builder function
    that receives a {!ctx} and returns message/timer handlers. The engine
    owns virtual time, a single seeded RNG tree, the network model, and
    per-node metrics and stable storage. Crashing a node discards its
    volatile state (the closures built by the builder) and invalidates its
    timers; restarting calls the builder again, so the node recovers only
    what it reads back from {!Stable}.

    Two runs with the same seed, nodes, and fault schedule produce identical
    event sequences — ties in virtual time are broken by sequence number. *)

type 'm t

(** Capabilities handed to a node. [rng], [stable], [metrics] and the event
    trace behind [emit] persist across restarts of the node; handlers do
    not. *)
type 'm ctx = {
  self : int;
  now : unit -> float;
  send : int -> 'm -> unit;
  set_timer : ?tag:string -> float -> int;
      (** [set_timer ~tag d] fires [on_timer] after [d] seconds unless
          cancelled or the node crashes first; returns a timer id. *)
  cancel_timer : int -> unit;
  rng : Cp_util.Rng.t;
  stable : Stable.t;
  metrics : Metrics.t;
  emit : Cp_obs.Event.t -> unit;
      (** record a typed protocol event in the node's bounded trace
          ({!trace}), stamped with virtual time and node id *)
  tctx : Cp_obs.Traceid.t;
      (** the node's ambient causal trace context — the id stamped on
          emissions and sends. Exposed so multiplexers hosting several
          protocol instances behind one node (the fleet's {!Group_mux}) can
          re-point chains minted by their sub-instances onto it. *)
}

type 'm handlers = {
  on_message : src:int -> 'm -> unit;
  on_timer : tid:int -> tag:string -> unit;
}

val create :
  ?seed:int ->
  ?net:Netmodel.t ->
  ?proc_time:('m -> float) ->
  ?trace_capacity:int ->
  ?obs:bool ->
  ?fresh_trace:('m -> bool) ->
  ?storage:(int -> Stable.t) ->
  size_of:('m -> int) ->
  classify:('m -> string) ->
  unit ->
  'm t
(** [classify] names a message kind for per-kind metrics
    (["sent.<kind>"] / ["recv.<kind>"]); [size_of] estimates wire size for
    byte counters. Default [seed] is 1, default network {!Netmodel.lan}.

    [proc_time] models per-node CPU capacity: each message costs that many
    seconds of the node's (single) processor, both to send and to receive.
    A message arriving at a busy node queues until the node is free, so
    nodes saturate — without it (the default) nodes have infinite capacity
    and throughput scales without bound.

    [trace_capacity] sizes each node's event ring
    (default {!Cp_obs.Trace.default_capacity}).

    [obs] (default true) turns the tracing layer on: per-node rings, the
    live hook, and causal trace-id propagation. With [obs:false] nothing is
    recorded or stamped (metrics stay on) and the event schedule is
    unchanged, so an obs-off run replays the identical simulation — the
    basis of the obs-overhead bench gate.

    [fresh_trace] (default: never) marks messages that {e start} a causal
    chain: sending one mints a fresh trace id instead of continuing the
    sender's current chain. The cluster runtime passes client submissions,
    so every command gets a distinct cross-node trace. Delivered messages
    carry their id to the destination, which adopts it for everything the
    handler emits; timer steps always mint fresh ids.

    [storage] (default: a fresh in-memory store per node) supplies each
    node's stable store at {!add_node} time, keyed by node id — pass
    {!Cp_storage.Wal.store} closures to back simulated nodes with real
    durable logs. The handle outlives crash/restart, as a disk would. *)

val add_node : 'm t -> id:int -> ('m ctx -> 'm handlers) -> unit
(** Register and start a node. Ids must be unique; they need not be dense. *)

val crash : 'm t -> int -> unit
(** Take a node down: volatile state and pending timers are lost; in-flight
    messages to it will be dropped. Stable storage survives. No-op if the
    node is already down. *)

val restart : 'm t -> ?wipe_stable:bool -> int -> unit
(** Bring a crashed node back by re-running its builder. [wipe_stable]
    models a replacement machine with an empty disk. No-op if up. *)

val is_up : 'm t -> int -> bool

val at : 'm t -> float -> (unit -> unit) -> unit
(** Schedule an engine action (fault injection, probe) at an absolute time.
    Actions run after message/timer events scheduled at the same instant. *)

val after : 'm t -> float -> (unit -> unit) -> unit
(** Relative form of {!at}. *)

val set_reachable : 'm t -> (int -> int -> bool) -> unit
(** Install a partition predicate [reachable src dst]; checked at send and at
    delivery, so healing a partition does not resurrect in-flight messages.
    Default: always reachable. *)

val run : ?until:float -> ?max_events:int -> 'm t -> unit
(** Process events until the queue empties, virtual time exceeds [until], or
    [max_events] have been processed (a livelock guard, default 50M). *)

val now : 'm t -> float

val events_processed : 'm t -> int

val node_ids : 'm t -> int list

val metrics : 'm t -> int -> Metrics.t

val stable : 'm t -> int -> Stable.t

val trace : 'm t -> int -> Cp_obs.Trace.t
(** The node's event trace. It survives crash/restart (like metrics); the
    engine itself records [Msg_recv] on every delivery and
    [Crashed]/[Restarted] on faults, protocol code adds the rest via
    [ctx.emit]. *)

val traces : 'm t -> Cp_obs.Trace.t list
(** Traces of all registered nodes (unspecified order); merge with
    {!Cp_obs.Trace.merge}. *)

val rng : 'm t -> Cp_util.Rng.t
(** The engine-level RNG (distinct from any node's). *)

val on_event : 'm t -> (Cp_obs.Trace.record -> unit) -> unit
(** Receive every event of every node, live, in addition to the per-node
    rings — the successor of the old string tracer hook. *)
