(** Per-node metric store: named counters and named observation series.

    The engine feeds message/byte counters automatically; protocol code can
    add its own counters (e.g. ["stable.writes"]) and observations (e.g.
    commit latencies) through its {!Engine.ctx}. *)

type t

val create : unit -> t

val incr : t -> ?by:int -> string -> unit

val get : t -> string -> int
(** 0 if the counter was never incremented. *)

val observe : t -> string -> float -> unit
(** Append a sample to a named series. *)

val series : t -> string -> float list
(** Samples in insertion order; [] if never observed. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val reset : t -> unit

val sum_matching : t -> prefix:string -> int
(** Sum of all counters whose name starts with [prefix]. *)

(** One-call export view for the metrics exporters: all counters plus a
    {!Cp_util.Stats.summary} of every observation series, both sorted by
    name. *)
type snapshot = {
  counters : (string * int) list;
  summaries : (string * Cp_util.Stats.summary) list;
}

val snapshot : t -> snapshot
