module Rng = Cp_util.Rng
module Heap = Cp_util.Heap
module Obs = Cp_obs

type 'm ctx = {
  self : int;
  now : unit -> float;
  send : int -> 'm -> unit;
  set_timer : ?tag:string -> float -> int;
  cancel_timer : int -> unit;
  rng : Rng.t;
  stable : Stable.t;
  metrics : Metrics.t;
  emit : Obs.Event.t -> unit;
  tctx : Obs.Traceid.t;
}

type 'm handlers = {
  on_message : src:int -> 'm -> unit;
  on_timer : tid:int -> tag:string -> unit;
}

type 'm node = {
  id : int;
  builder : 'm ctx -> 'm handlers;
  mutable handlers : 'm handlers option; (* None = down *)
  mutable epoch : int; (* bumped on crash to invalidate timers *)
  mutable busy_until : float; (* single-CPU service model; see [proc_time] *)
  cancelled : (int, unit) Hashtbl.t;
  node_rng : Rng.t;
  node_stable : Stable.t;
  node_metrics : Metrics.t;
  node_trace : Obs.Trace.t;
  node_tctx : Obs.Traceid.t; (* ambient trace id; survives restarts *)
  mutable ctx : 'm ctx option;
}

type 'm kind =
  | Deliver of { src : int; dst : int; msg : 'm; size : int; trace : int }
  | Timer of { node : int; tid : int; tag : string; epoch : int }
  | Action of (unit -> unit)

type 'm event = { time : float; seq : int; kind : 'm kind }

type 'm t = {
  mutable time : float;
  mutable seq : int;
  mutable next_tid : int;
  queue : 'm event Heap.t;
  nodes : (int, 'm node) Hashtbl.t;
  engine_rng : Rng.t;
  net : Netmodel.t;
  proc_time : ('m -> float) option;
  size_of : 'm -> int;
  classify : 'm -> string;
  mutable reachable : int -> int -> bool;
  mutable processed : int;
  trace_capacity : int;
  obs : bool; (* tracing on: rings, trace ids, hook; metrics stay on *)
  fresh_trace : 'm -> bool; (* messages that start a new causal chain *)
  storage : int -> Stable.t; (* per-node store factory, keyed by node id *)
  mutable event_hook : (Obs.Trace.record -> unit) option;
}

let event_cmp (a : _ event) (b : _ event) =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create ?(seed = 1) ?(net = Netmodel.lan) ?proc_time
    ?(trace_capacity = Obs.Trace.default_capacity) ?(obs = true)
    ?(fresh_trace = fun _ -> false) ?(storage = fun _ -> Stable.create ())
    ~size_of ~classify () =
  {
    time = 0.;
    seq = 0;
    next_tid = 0;
    queue = Heap.create ~cmp:event_cmp;
    nodes = Hashtbl.create 16;
    engine_rng = Rng.create seed;
    net;
    proc_time;
    size_of;
    classify;
    reachable = (fun _ _ -> true);
    processed = 0;
    trace_capacity;
    obs;
    fresh_trace;
    storage;
    event_hook = None;
  }

let now t = t.time

let events_processed t = t.processed

let rng t = t.engine_rng

let on_event t f = t.event_hook <- Some f

let set_reachable t f = t.reachable <- f

let node_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.nodes [] |> List.sort compare

let find_node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Engine: unknown node %d" id)

let metrics t id = (find_node t id).node_metrics

let stable t id = (find_node t id).node_stable

let trace t id = (find_node t id).node_trace

let traces t =
  Hashtbl.fold (fun _ n acc -> n.node_trace :: acc) t.nodes []

(* Tracing off = no rings, no trace ids, no hook; the run's event schedule
   is untouched either way, so obs on/off runs stay step-for-step identical
   (the basis of the obs-overhead bench gate). *)
let emit_event t node ev =
  if t.obs then begin
    let tid = Obs.Traceid.current node.node_tctx in
    let dropped0 = Obs.Trace.dropped node.node_trace in
    Obs.Trace.emit ~tid node.node_trace ~at:t.time ~node:node.id ev;
    if Obs.Trace.dropped node.node_trace > dropped0 then
      Metrics.incr node.node_metrics "ring_dropped";
    match t.event_hook with
    | Some f -> f { Obs.Trace.at = t.time; node = node.id; tid; ev }
    | None -> ()
  end

let push t time kind =
  t.seq <- t.seq + 1;
  Heap.push t.queue { time; seq = t.seq; kind }

let at t time f = push t (max time t.time) (Action f)

let after t delay f = at t (t.time +. delay) f

let is_up t id = (find_node t id).handlers <> None

(* Sending: consult partition and network model now; the partition is
   re-checked at delivery time as well. *)
let do_send t node dst msg =
  let kind = t.classify msg in
  let size = t.size_of msg in
  (* The outgoing message carries the sender's current trace id; messages
     that start a causal chain of their own (client submissions) mint a
     fresh one, so each command gets a distinct cross-node trace. *)
  let trace =
    if not t.obs then Obs.Traceid.none
    else if t.fresh_trace msg then Obs.Traceid.mint node.node_tctx
    else Obs.Traceid.current node.node_tctx
  in
  (match t.proc_time with
  | Some cost -> node.busy_until <- Float.max node.busy_until t.time +. cost msg
  | None -> ());
  Metrics.incr node.node_metrics "msgs_sent";
  Metrics.incr node.node_metrics ~by:size "bytes_sent";
  Metrics.incr node.node_metrics ("sent." ^ kind);
  if t.reachable node.id dst then begin
    match Netmodel.sample_delay t.net t.engine_rng with
    | None -> ()
    | Some d ->
      push t (t.time +. d) (Deliver { src = node.id; dst; msg; size; trace });
      if Netmodel.sample_duplicate t.net t.engine_rng then begin
        match Netmodel.sample_delay t.net t.engine_rng with
        | None -> ()
        | Some d' ->
          push t (t.time +. d') (Deliver { src = node.id; dst; msg; size; trace })
      end
  end

let make_ctx t node =
  let set_timer ?(tag = "") delay =
    t.next_tid <- t.next_tid + 1;
    let tid = t.next_tid in
    push t (t.time +. delay) (Timer { node = node.id; tid; tag; epoch = node.epoch });
    tid
  in
  {
    self = node.id;
    now = (fun () -> t.time);
    send = (fun dst msg -> do_send t node dst msg);
    set_timer;
    cancel_timer = (fun tid -> Hashtbl.replace node.cancelled tid ());
    rng = node.node_rng;
    stable = node.node_stable;
    metrics = node.node_metrics;
    emit = (fun ev -> emit_event t node ev);
    tctx = node.node_tctx;
  }

let start_node t node =
  let ctx =
    match node.ctx with
    | Some c -> c
    | None ->
      let c = make_ctx t node in
      node.ctx <- Some c;
      c
  in
  node.handlers <- Some (node.builder ctx)

let add_node t ~id builder =
  if Hashtbl.mem t.nodes id then
    invalid_arg (Printf.sprintf "Engine.add_node: duplicate id %d" id);
  let node =
    {
      id;
      builder;
      handlers = None;
      epoch = 0;
      busy_until = 0.;
      cancelled = Hashtbl.create 8;
      node_rng = Rng.split t.engine_rng;
      node_stable = t.storage id;
      node_metrics = Metrics.create ();
      node_trace = Obs.Trace.create ~capacity:t.trace_capacity ();
      node_tctx = Obs.Traceid.create ~origin:id;
      ctx = None;
    }
  in
  Hashtbl.add t.nodes id node;
  (* Start within the event loop so adding nodes mid-run is well ordered. *)
  push t t.time (Action (fun () -> start_node t node))

let crash t id =
  let node = find_node t id in
  match node.handlers with
  | None -> ()
  | Some _ ->
    node.handlers <- None;
    node.epoch <- node.epoch + 1;
    Hashtbl.reset node.cancelled;
    Metrics.incr node.node_metrics "crashes";
    (* The crash ends whatever causal chain the node was in. *)
    Obs.Traceid.clear node.node_tctx;
    emit_event t node Obs.Event.Crashed

let restart t ?(wipe_stable = false) id =
  let node = find_node t id in
  match node.handlers with
  | Some _ -> ()
  | None ->
    if wipe_stable then Stable.wipe node.node_stable;
    Metrics.incr node.node_metrics "restarts";
    Obs.Traceid.clear node.node_tctx;
    emit_event t node Obs.Event.Restarted;
    start_node t node

let handle_event t ev =
  match ev.kind with
  | Action f -> f ()
  | Deliver { src; dst; msg; size; trace } -> begin
    match Hashtbl.find_opt t.nodes dst with
    | None -> ()
    | Some node -> begin
      match node.handlers with
      | None -> () (* node down: message lost *)
      | Some h ->
        if t.reachable src dst then begin
          match t.proc_time with
          | Some cost when node.busy_until > t.time ->
            (* The node's CPU is busy: queue the message until it frees up. *)
            ignore cost;
            push t node.busy_until (Deliver { src; dst; msg; size; trace })
          | _ ->
            (match t.proc_time with
            | Some cost -> node.busy_until <- t.time +. cost msg
            | None -> ());
            (* Everything the handler emits/sends continues the message's
               causal chain. *)
            if t.obs then Obs.Traceid.adopt node.node_tctx trace;
            let kind = t.classify msg in
            Metrics.incr node.node_metrics "msgs_recv";
            Metrics.incr node.node_metrics ~by:size "bytes_recv";
            Metrics.incr node.node_metrics ("recv." ^ kind);
            emit_event t node (Obs.Event.Msg_recv { src; kind; bytes = size });
            h.on_message ~src msg
        end
    end
  end
  | Timer { node = id; tid; tag; epoch } -> begin
    match Hashtbl.find_opt t.nodes id with
    | None -> ()
    | Some node -> begin
      match node.handlers with
      | None -> ()
      | Some h ->
        if node.epoch = epoch then begin
          if Hashtbl.mem node.cancelled tid then Hashtbl.remove node.cancelled tid
          else begin
            (* A timer step starts a fresh causal chain (retransmissions,
               elections, ticks are not caused by any one message). *)
            if t.obs then ignore (Obs.Traceid.mint node.node_tctx);
            h.on_timer ~tid ~tag
          end
        end
    end
  end

let run ?until ?(max_events = 50_000_000) t =
  let continue = ref true in
  while !continue do
    if t.processed >= max_events then continue := false
    else begin
      match Heap.peek t.queue with
      | None -> continue := false
      | Some ev -> begin
        match until with
        | Some stop when ev.time > stop ->
          t.time <- stop;
          continue := false
        | _ ->
          ignore (Heap.pop t.queue);
          t.time <- max t.time ev.time;
          t.processed <- t.processed + 1;
          handle_event t ev
      end
    end
  done;
  match until with
  | Some stop when t.time < stop && Heap.is_empty t.queue -> t.time <- stop
  | _ -> ()
