(* The storage signature: what a runtime must provide to persist a replica.

   Mirrors {!Cp_transport.Transport.S} for the disk: the engine's effect
   interpreter writes acceptor images, chosen log entries, and snapshots
   through the capability value below, and backends — the in-memory table
   ({!Mem}), the group-commit write-ahead log ({!Wal}), the fault injector
   ({!Faulty}) — are interchangeable instances rather than hand-rolled
   hashtables. Values are bytes: the typed stable-record codecs
   ({!Cp_proto.Codec.encode_acceptor_image} and friends) live above this
   layer, so a backend never sees (or marshals) an OCaml value.

   Namespacing: [sub t ~name] derives a view whose keys are invisible to
   the parent and to sibling views, but live on the same underlying device
   and share its crash/restart lifetime — the fleet gives each co-hosted
   replica group its own view of one machine's disk. View names must not
   contain NUL: the separator byte is what keeps concatenated namespaces
   collision-free. Re-deriving a view with the same name yields the SAME
   per-view write counters (they are carried by the backend, keyed by the
   resolved prefix), so storage accounting survives re-derivation.

   Durability contract: [put]/[remove] order records but need not make them
   durable; [flush] must. The effect interpreter calls [flush] once per
   [Core.step] effect batch — the group-commit rule — so a WAL pays one
   fsync per protocol step, not one per record. *)

type stats = {
  writes : int;  (** [put] calls through this view *)
  bytes_written : int;  (** value bytes across those puts *)
  bytes_used : int;  (** live footprint of this view (value bytes) *)
  fsyncs : int;  (** durable syncs of the underlying device (root-wide) *)
  bytes_appended : int;  (** physical log bytes incl. framing (root-wide) *)
  segments : int;  (** live segment files (0 for memory backends) *)
  recovery_ms : float;  (** time spent rebuilding the index on open *)
}

(* The per-view mutable cell backends register under the view's resolved
   prefix; deriving the same view twice returns the same cell. *)
type view_counters = { mutable vc_writes : int; mutable vc_bytes : int }

let fresh_view_counters () = { vc_writes = 0; vc_bytes = 0 }

let register_view views ~prefix =
  match Hashtbl.find_opt views prefix with
  | Some c -> c
  | None ->
    let c = fresh_view_counters () in
    Hashtbl.replace views prefix c;
    c

let check_view_name name =
  if String.contains name '\x00' then
    invalid_arg "Storage.sub: view name contains NUL"

module type S = sig
  type t
  (** One view's handle: a namespace of a single underlying device. *)

  val backend : t -> string
  (** Backend name ("mem", "wal", "faulty(...)"). *)

  val put : t -> string -> string -> unit
  (** Persist bytes under a key, overwriting any previous value. Durable
      after the next [flush]. *)

  val get : t -> string -> string option

  val remove : t -> string -> unit

  val mem : t -> string -> bool

  val keys : t -> string list
  (** Live keys of this view, sorted. *)

  val sub : t -> name:string -> t
  (** Derive a namespaced view of the same device (see above). Raises
      [Invalid_argument] if [name] contains a NUL byte. *)

  val flush : t -> unit
  (** Make every preceding [put]/[remove] durable. One call per effect
      batch is the group-commit rule. *)

  val wipe : t -> unit
  (** Erase this view's keys; wiping the {e root} erases every view —
      models a disk loss / replacement machine. *)

  val stats : t -> stats

  val close : t -> unit
  (** Release OS resources (no-op for memory backends). The handle must
      not be used afterwards. *)
end

type t = Packed : (module S with type t = 'a) * 'a -> t
(** A view paired with its backend — the value {!Cp_sim.Engine.ctx} carries
    and the effect interpreter writes through. *)

(* --- forwarders: call sites read like the old Stable API --------------- *)

let backend (Packed ((module B), h)) = B.backend h

let put (Packed ((module B), h)) k v = B.put h k v

let get (Packed ((module B), h)) k = B.get h k

let remove (Packed ((module B), h)) k = B.remove h k

let mem (Packed ((module B), h)) k = B.mem h k

let keys (Packed ((module B), h)) = B.keys h

let sub (Packed ((module B), h)) ~name = Packed ((module B), B.sub h ~name)

let flush (Packed ((module B), h)) = B.flush h

let wipe (Packed ((module B), h)) = B.wipe h

let stats (Packed ((module B), h)) = B.stats h

let close (Packed ((module B), h)) = B.close h

let bytes_used t = (stats t).bytes_used

let write_count t = (stats t).writes

let bytes_written t = (stats t).bytes_written

(* Counter export for metrics surfaces (Prometheus text, admin /metrics):
   one (name, value) list, stable names, millisecond recovery time rounded
   to an int so it renders like every other counter. *)
let counter_list t =
  let s = stats t in
  [
    ("storage_writes", s.writes);
    ("storage_bytes_written", s.bytes_written);
    ("storage_bytes_used", s.bytes_used);
    ("storage_fsyncs", s.fsyncs);
    ("storage_bytes_appended", s.bytes_appended);
    ("storage_segments", s.segments);
    ("storage_recovery_ms", int_of_float (Float.round s.recovery_ms));
  ]
