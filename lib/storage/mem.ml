(* The in-memory instance: the original simulator "disk", semantics
   preserved — a flat hashtable of full keys shared by every view, so
   contents survive a hosted node's crash/restart (the handle outlives the
   handlers) and a root [wipe] models disk loss. [flush] is a no-op: memory
   is "durable" the moment it is written, which is exactly what the
   deterministic golden traces pin. *)

type root = {
  data : (string, string) Hashtbl.t;
  views : (string, Storage.view_counters) Hashtbl.t;
}

module View = struct
  type t = { root : root; prefix : string; c : Storage.view_counters }

  let backend _ = "mem"

  let sub t ~name =
    Storage.check_view_name name;
    let prefix = t.prefix ^ name ^ "\x00" in
    { t with prefix; c = Storage.register_view t.root.views ~prefix }

  let key t k = t.prefix ^ k

  let put t k v =
    Hashtbl.replace t.root.data (key t k) v;
    t.c.Storage.vc_writes <- t.c.Storage.vc_writes + 1;
    t.c.Storage.vc_bytes <- t.c.Storage.vc_bytes + String.length v

  let get t k = Hashtbl.find_opt t.root.data (key t k)

  let remove t k = Hashtbl.remove t.root.data (key t k)

  let mem t k = Hashtbl.mem t.root.data (key t k)

  let in_view t k =
    String.length k >= String.length t.prefix
    && String.sub k 0 (String.length t.prefix) = t.prefix

  let strip t k =
    String.sub k (String.length t.prefix) (String.length k - String.length t.prefix)

  let keys t =
    Hashtbl.fold
      (fun k _ acc -> if in_view t k then strip t k :: acc else acc)
      t.root.data []
    |> List.sort String.compare

  let flush _ = ()

  let wipe t =
    if t.prefix = "" then Hashtbl.reset t.root.data
    else begin
      let doomed =
        Hashtbl.fold (fun k _ acc -> if in_view t k then k :: acc else acc) t.root.data []
      in
      List.iter (Hashtbl.remove t.root.data) doomed
    end

  let stats t =
    let bytes_used =
      Hashtbl.fold
        (fun k v acc -> if in_view t k then acc + String.length v else acc)
        t.root.data 0
    in
    {
      Storage.writes = t.c.Storage.vc_writes;
      bytes_written = t.c.Storage.vc_bytes;
      bytes_used;
      fsyncs = 0;
      bytes_appended = 0;
      segments = 0;
      recovery_ms = 0.;
    }

  let close _ = ()
end

type t = View.t

let create () =
  let root = { data = Hashtbl.create 16; views = Hashtbl.create 4 } in
  { View.root; prefix = ""; c = Storage.register_view root.views ~prefix:"" }

let store () = Storage.Packed ((module View), create ())
