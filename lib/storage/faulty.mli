(** Fault injection for storage backends.

    Two depths: {!io} wraps the WAL's syscall surface for byte-granular
    torn-tail injection (crash after N bytes, short writes); {!store} wraps
    any packed store for op-granular crash points (before the Nth put or
    flush). {!Crash} models the power cut: whatever landed before it is on
    disk, nothing after. *)

exception Crash

type plan = {
  mutable crash_after_bytes : int;
  mutable short_write : int;
  mutable crash_before_put : int;
  mutable crash_before_flush : int;
  mutable crashed : bool;
}

val plan :
  ?crash_after_bytes:int ->
  ?short_write:int ->
  ?crash_before_put:int ->
  ?crash_before_flush:int ->
  unit ->
  plan
(** All countdowns default to "never" (-1); [short_write] defaults to
    unlimited (0). Once a countdown fires, every later call raises
    {!Crash} until a fresh plan is used. *)

val io : plan -> Wal.io
(** Syscall-level injector: [crash_after_bytes] lets exactly that many
    more bytes reach the file (possibly mid-record), then raises {!Crash}
    on the following syscall; [short_write] caps bytes per write(2). *)

module View : Storage.S

type t = View.t

val wrap : plan -> Storage.t -> t

val store : plan -> Storage.t -> Storage.t
(** Op-level injector around an existing packed store. *)
