(** Append-only segmented write-ahead log: the durable {!Storage.S}
    instance.

    Records are framed [len:u32le][crc32:u32le][payload] and appended with
    write(2) immediately; {!Storage.S.flush} issues one fsync for the whole
    batch (the group-commit rule). Recovery replays segments in order,
    keeps every record up to the first truncated or CRC-failing frame, and
    truncates the torn tail away — garbage tails never raise. Compaction
    checkpoints the live index into a fresh segment once dead bytes
    dominate, then deletes the older segments; a crash at any point of
    compaction recovers to the same index. *)

type io = {
  io_write : Unix.file_descr -> Bytes.t -> int -> int -> int;
  io_fsync : Unix.file_descr -> unit;
}
(** The syscall surface, injectable so {!Faulty} can sit below the log and
    crash it mid-record (torn tails, short writes). *)

val default_io : io

module View : Storage.S

type t = View.t

val open_dir :
  ?segment_max:int ->
  ?compact_min:int ->
  ?compact_factor:int ->
  ?io:io ->
  string ->
  t
(** Open (creating if needed) a log directory and replay it into memory.
    [segment_max] rotates the active segment past that size;
    compaction triggers once dead bytes exceed both [compact_min] and
    [compact_factor * live_bytes]. *)

val store :
  ?segment_max:int ->
  ?compact_min:int ->
  ?compact_factor:int ->
  ?io:io ->
  string ->
  Storage.t
(** [open_dir] packed as a {!Storage.t}. *)
