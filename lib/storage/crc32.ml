(* CRC-32 (IEEE 802.3, reflected, polynomial 0xedb88320): the checksum in
   every WAL record frame. Table-driven, allocation-free per byte; the
   format must be readable across OCaml versions and word sizes, so the
   stdlib's [Hashtbl.hash] is not an option. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s ~pos ~len =
  let t = Lazy.force table in
  let c = ref (crc lxor 0xffffffff) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let string s = update 0 s ~pos:0 ~len:(String.length s)
