(* Fault injection for storage, at two depths:

   - {!io}: a {!Wal.io} wrapper that crashes the process-model after a
     byte budget, optionally mid-record (short write then [Crash]). This is
     what the torn-tail property test sweeps: crash the WAL at every byte
     offset of a workload and check recovery keeps exactly the synced
     prefix.
   - {!View}/{!store}: a {!Storage.S} wrapper around any packed store that
     crashes at op granularity (before the Nth put / before the Nth flush)
     for coarser schedule-level tests.

   [Crash] is the simulated power cut. Everything the wrapped store wrote
   before the crash is on "disk"; nothing after is. *)

exception Crash

type plan = {
  mutable crash_after_bytes : int; (* -1 = never *)
  mutable short_write : int; (* max bytes per write(2), 0 = unlimited *)
  mutable crash_before_put : int; (* countdown, -1 = never *)
  mutable crash_before_flush : int; (* countdown, -1 = never *)
  mutable crashed : bool;
}

let plan ?(crash_after_bytes = -1) ?(short_write = 0) ?(crash_before_put = -1)
    ?(crash_before_flush = -1) () =
  { crash_after_bytes; short_write; crash_before_put; crash_before_flush; crashed = false }

let check p = if p.crashed then raise Crash

(* --- syscall-level injection (sits below Wal) --------------------------- *)

let io p =
  let io_write fd b off len =
    check p;
    let len = if p.short_write > 0 then min len p.short_write else len in
    let len =
      if p.crash_after_bytes >= 0 then min len p.crash_after_bytes else len
    in
    if p.crash_after_bytes = 0 then begin
      p.crashed <- true;
      raise Crash
    end;
    let n = Wal.default_io.Wal.io_write fd b off len in
    if p.crash_after_bytes >= 0 then begin
      p.crash_after_bytes <- p.crash_after_bytes - n;
      if p.crash_after_bytes = 0 then p.crashed <- true
      (* the crash fires on the NEXT syscall: these n bytes did land *)
    end;
    n
  in
  let io_fsync fd =
    check p;
    Wal.default_io.Wal.io_fsync fd
  in
  { Wal.io_write; io_fsync }

(* --- op-level injection (wraps any packed store) ------------------------ *)

module View = struct
  type t = { inner : Storage.t; p : plan }

  let backend t = "faulty(" ^ Storage.backend t.inner ^ ")"

  let tick p counter =
    check p;
    match counter () with
    | -1 -> ()
    | 0 ->
      p.crashed <- true;
      raise Crash
    | _ -> ()

  let put t k v =
    tick t.p (fun () ->
        let n = t.p.crash_before_put in
        if n > 0 then t.p.crash_before_put <- n - 1;
        n);
    Storage.put t.inner k v

  let flush t =
    tick t.p (fun () ->
        let n = t.p.crash_before_flush in
        if n > 0 then t.p.crash_before_flush <- n - 1;
        n);
    Storage.flush t.inner

  let get t k =
    check t.p;
    Storage.get t.inner k

  let remove t k =
    check t.p;
    Storage.remove t.inner k

  let mem t k =
    check t.p;
    Storage.mem t.inner k

  let keys t =
    check t.p;
    Storage.keys t.inner

  let sub t ~name = { t with inner = Storage.sub t.inner ~name }

  let wipe t =
    check t.p;
    Storage.wipe t.inner

  let stats t = Storage.stats t.inner

  let close t = Storage.close t.inner
end

type t = View.t

let wrap p inner = { View.inner; p }

let store p inner = Storage.Packed ((module View), wrap p inner)
