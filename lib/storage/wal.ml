(* Append-only segmented write-ahead log: the durable {!Storage.S} instance.

   Byte format (defined, OCaml-version independent — no [Marshal]):

     segment   := record*                      file DIR/wal-%08d.seg
     record    := len:u32le crc:u32le payload  len = |payload|, crc = CRC-32(payload)
     payload   := 0x00 klen:uleb128 key value  (put: value = rest of payload)
                | 0x01 klen:uleb128 key        (remove)

   The full (prefix-resolved) key is logged, so namespaced views ({!sub})
   ride the same segment stream; the NUL separator byte keeps prefixes
   collision-free exactly as in {!Mem}.

   Durability: [put]/[remove] append via write(2) immediately (so the OS
   sees every record in order — a torn tail is always a strict prefix of
   what was appended) but do NOT sync; [flush] issues one fsync for the
   whole batch — the group-commit rule. The effect interpreter flushes once
   per [Core.step] effect batch, so a pipeline of depth d costs ~1/d
   fsyncs per record instead of 1.

   Recovery ([open_dir]) replays segments in order into the in-memory
   index. Replay stops at the first frame that is truncated, has an
   implausible length, or fails its CRC: everything before it (every synced
   record, and possibly a little more that the OS got to disk anyway) is
   kept, the torn tail is truncated away, and any later segments are
   deleted — garbage never raises, it is the crash suffix.

   Compaction invariant: every live key's latest record exists in some
   live segment. When the dead-record backlog exceeds
   [max compact_min (compact_factor * live_bytes)] a checkpoint rewrites
   the whole index into a fresh segment, fsyncs it, and only then deletes
   the older segments — a crash at any point of compaction recovers to the
   same index ([Drop_log]s and snapshot floors are what feed the dead
   backlog, so log compaction above drives segment compaction below). *)

type io = {
  io_write : Unix.file_descr -> Bytes.t -> int -> int -> int;
  io_fsync : Unix.file_descr -> unit;
}

let default_io = { io_write = Unix.write; io_fsync = Unix.fsync }

let max_record = 64 * 1024 * 1024 (* length-field sanity bound on recovery *)

type root = {
  dir : string;
  io : io;
  segment_max : int;
  compact_min : int;
  compact_factor : int;
  data : (string, string) Hashtbl.t; (* the live index: full key -> value *)
  views : (string, Storage.view_counters) Hashtbl.t;
  mutable fd : Unix.file_descr option; (* active segment; None after close *)
  mutable seg_hi : int; (* active segment number *)
  mutable seg_lo : int; (* oldest live segment number *)
  mutable seg_bytes : int; (* bytes in the active segment *)
  mutable dirty : bool; (* appended since the last fsync *)
  mutable live_bytes : int; (* disk bytes of the latest record per live key *)
  mutable dead_bytes : int; (* disk bytes superseded by overwrite/remove *)
  mutable fsyncs : int;
  mutable appended : int; (* lifetime physical bytes incl. framing *)
  mutable recovery_ms : float;
}

(* --- framing ----------------------------------------------------------- *)

let uleb buf n =
  let rec go n =
    if n land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let read_uleb s pos limit =
  let rec go pos shift acc =
    if pos >= limit || shift > 56 then None
    else begin
      let b = Char.code s.[pos] in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then Some (acc, pos + 1) else go (pos + 1) (shift + 7) acc
    end
  in
  go pos 0 0

let u32le buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

let read_u32le s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let payload_put key value =
  let buf = Buffer.create (String.length key + String.length value + 8) in
  Buffer.add_char buf '\000';
  uleb buf (String.length key);
  Buffer.add_string buf key;
  Buffer.add_string buf value;
  Buffer.contents buf

let payload_remove key =
  let buf = Buffer.create (String.length key + 8) in
  Buffer.add_char buf '\001';
  uleb buf (String.length key);
  Buffer.add_string buf key;
  Buffer.contents buf

let frame payload =
  let buf = Buffer.create (String.length payload + 8) in
  u32le buf (String.length payload);
  u32le buf (Crc32.string payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* Size on disk of the put record for (key, value): what live/dead byte
   accounting charges per index entry. *)
let uleb_len n =
  let rec go n acc = if n land lnot 0x7f = 0 then acc else go (n lsr 7) (acc + 1) in
  go n 1

let put_disk_size key value = 8 + 1 + uleb_len (String.length key) + String.length key + String.length value

let remove_disk_size key = 8 + 1 + uleb_len (String.length key) + String.length key

(* --- segment files ----------------------------------------------------- *)

let seg_name r n = Filename.concat r.dir (Printf.sprintf "wal-%08d.seg" n)

let seg_number base =
  if
    String.length base = 16
    && String.sub base 0 4 = "wal-"
    && Filename.check_suffix base ".seg"
  then int_of_string_opt (String.sub base 4 8)
  else None

let open_seg r n =
  let fd = Unix.openfile (seg_name r n) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  r.fd <- Some fd;
  r.seg_hi <- n;
  r.seg_bytes <- (Unix.fstat fd).Unix.st_size

let active_fd r =
  match r.fd with
  | Some fd -> fd
  | None -> failwith "Wal: store is closed"

let write_all r (s : string) =
  let fd = active_fd r in
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then begin
      let n =
        try r.io.io_write fd b off (len - off)
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      (* Count what physically left before any injected crash above. *)
      r.seg_bytes <- r.seg_bytes + n;
      r.appended <- r.appended + n;
      go (off + n)
    end
  in
  go 0;
  r.dirty <- true

let fsync_root r =
  if r.dirty then begin
    r.io.io_fsync (active_fd r);
    r.fsyncs <- r.fsyncs + 1;
    r.dirty <- false
  end

let rotate_if_full r =
  if r.seg_bytes >= r.segment_max then begin
    (* Seal the full segment before abandoning it: rotation must never
       reduce durability below what a flush of the old segment gave. *)
    fsync_root r;
    Unix.close (active_fd r);
    r.fd <- None;
    open_seg r (r.seg_hi + 1)
  end

(* --- index updates with dead-byte accounting --------------------------- *)

let append_put r key value =
  rotate_if_full r;
  (match Hashtbl.find_opt r.data key with
  | Some old ->
    r.dead_bytes <- r.dead_bytes + put_disk_size key old;
    r.live_bytes <- r.live_bytes - put_disk_size key old
  | None -> ());
  write_all r (frame (payload_put key value));
  Hashtbl.replace r.data key value;
  r.live_bytes <- r.live_bytes + put_disk_size key value

let append_remove r key =
  match Hashtbl.find_opt r.data key with
  | None -> () (* removing an absent key is a no-op, as in Mem *)
  | Some old ->
    rotate_if_full r;
    write_all r (frame (payload_remove key));
    Hashtbl.remove r.data key;
    r.live_bytes <- r.live_bytes - put_disk_size key old;
    (* The superseded put and the remove record itself are both garbage
       the next checkpoint erases. *)
    r.dead_bytes <- r.dead_bytes + put_disk_size key old + remove_disk_size key

(* --- compaction -------------------------------------------------------- *)

let checkpoint r =
  (* Rewrite the whole live index into a fresh segment, sync it, and only
     then delete the older segments: every prefix of this sequence recovers
     to the same index. *)
  fsync_root r;
  Unix.close (active_fd r);
  r.fd <- None;
  let doomed_lo, doomed_hi = (r.seg_lo, r.seg_hi) in
  open_seg r (r.seg_hi + 1);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.data []
  |> List.sort compare
  |> List.iter (fun (k, v) -> write_all r (frame (payload_put k v)));
  fsync_root r;
  for n = doomed_lo to doomed_hi do
    try Unix.unlink (seg_name r n) with Unix.Unix_error _ -> ()
  done;
  r.seg_lo <- r.seg_hi;
  r.dead_bytes <- 0

let maybe_compact r =
  if
    r.dead_bytes >= r.compact_min
    && r.dead_bytes >= r.compact_factor * max 1 r.live_bytes
  then checkpoint r

(* --- recovery ---------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* Replay one segment's records into the index; returns the byte offset of
   the valid prefix (= file length iff the whole segment parsed). *)
let replay_segment r s =
  let n = String.length s in
  let rec go pos =
    if pos + 8 > n then pos
    else begin
      let len = read_u32le s pos in
      if len < 1 || len > max_record || pos + 8 + len > n then pos
      else begin
        let crc = read_u32le s (pos + 4) in
        if Crc32.update 0 s ~pos:(pos + 8) ~len <> crc then pos
        else begin
          let limit = pos + 8 + len in
          let op = Char.code s.[pos + 8] in
          match read_uleb s (pos + 9) limit with
          | Some (klen, kpos) when kpos + klen <= limit ->
            let key = String.sub s kpos klen in
            (match op with
            | 0 ->
              let value = String.sub s (kpos + klen) (limit - kpos - klen) in
              (match Hashtbl.find_opt r.data key with
              | Some old ->
                r.dead_bytes <- r.dead_bytes + put_disk_size key old;
                r.live_bytes <- r.live_bytes - put_disk_size key old
              | None -> ());
              Hashtbl.replace r.data key value;
              r.live_bytes <- r.live_bytes + put_disk_size key value
            | 1 ->
              (match Hashtbl.find_opt r.data key with
              | Some old ->
                Hashtbl.remove r.data key;
                r.live_bytes <- r.live_bytes - put_disk_size key old;
                r.dead_bytes <- r.dead_bytes + put_disk_size key old
              | None -> ());
              r.dead_bytes <- r.dead_bytes + remove_disk_size key
            | _ -> () (* unknown op inside a CRC-valid frame: skip forward *));
            go limit
          | _ -> pos (* malformed key header: stop here *)
        end
      end
    end
  in
  go 0

let recover r =
  let t0 = Unix.gettimeofday () in
  let segs =
    Sys.readdir r.dir |> Array.to_list
    |> List.filter_map seg_number
    |> List.sort compare
  in
  (match segs with
  | [] ->
    r.seg_lo <- 0;
    open_seg r 0
  | lo :: _ ->
    r.seg_lo <- lo;
    let rec walk = function
      | [] -> ()
      | n :: rest ->
        let path = seg_name r n in
        let s = read_file path in
        let valid = replay_segment r s in
        r.appended <- r.appended + valid;
        if valid < String.length s then begin
          (* Torn tail: truncate it away and drop everything after it — the
             crash suffix was never acknowledged as durable. *)
          let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
          Unix.ftruncate fd valid;
          Unix.close fd;
          List.iter
            (fun m -> try Unix.unlink (seg_name r m) with Unix.Unix_error _ -> ())
            rest;
          r.seg_hi <- n
        end
        else begin
          r.seg_hi <- n;
          walk rest
        end
    in
    walk segs;
    open_seg r r.seg_hi);
  r.recovery_ms <- (Unix.gettimeofday () -. t0) *. 1e3

(* --- the Storage.S instance -------------------------------------------- *)

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

module View = struct
  type t = { root : root; prefix : string; c : Storage.view_counters }

  let backend _ = "wal"

  let sub t ~name =
    Storage.check_view_name name;
    let prefix = t.prefix ^ name ^ "\x00" in
    { t with prefix; c = Storage.register_view t.root.views ~prefix }

  let key t k = t.prefix ^ k

  let put t k v =
    append_put t.root (key t k) v;
    t.c.Storage.vc_writes <- t.c.Storage.vc_writes + 1;
    t.c.Storage.vc_bytes <- t.c.Storage.vc_bytes + String.length v

  let get t k = Hashtbl.find_opt t.root.data (key t k)

  let remove t k = append_remove t.root (key t k)

  let mem t k = Hashtbl.mem t.root.data (key t k)

  let in_view t k =
    String.length k >= String.length t.prefix
    && String.sub k 0 (String.length t.prefix) = t.prefix

  let strip t k =
    String.sub k (String.length t.prefix) (String.length k - String.length t.prefix)

  let keys t =
    Hashtbl.fold
      (fun k _ acc -> if in_view t k then strip t k :: acc else acc)
      t.root.data []
    |> List.sort String.compare

  let flush t =
    fsync_root t.root;
    (* Compaction rides the flush boundary, so a checkpoint never splits an
       effect batch's records across the durability edge. *)
    maybe_compact t.root

  let wipe t =
    let r = t.root in
    if t.prefix = "" then begin
      (* Disk loss: delete every segment and start a fresh one. *)
      fsync_root r;
      Unix.close (active_fd r);
      r.fd <- None;
      for n = r.seg_lo to r.seg_hi do
        try Unix.unlink (seg_name r n) with Unix.Unix_error _ -> ()
      done;
      Hashtbl.reset r.data;
      r.live_bytes <- 0;
      r.dead_bytes <- 0;
      r.seg_lo <- r.seg_hi + 1;
      open_seg r r.seg_lo
    end
    else
      keys t |> List.iter (fun k -> append_remove r (key t k))

  let stats t =
    let r = t.root in
    let bytes_used =
      Hashtbl.fold
        (fun k v acc -> if in_view t k then acc + String.length v else acc)
        r.data 0
    in
    {
      Storage.writes = t.c.Storage.vc_writes;
      bytes_written = t.c.Storage.vc_bytes;
      bytes_used;
      fsyncs = r.fsyncs;
      bytes_appended = r.appended;
      segments = r.seg_hi - r.seg_lo + 1;
      recovery_ms = r.recovery_ms;
    }

  let close t =
    match t.root.fd with
    | None -> ()
    | Some fd ->
      (* Best-effort final sync: a failing device (or an injected crash
         plan) must not stop [close] from releasing the descriptor. *)
      (try fsync_root t.root with _ -> ());
      Unix.close fd;
      t.root.fd <- None
end

type t = View.t

let open_dir ?(segment_max = 262_144) ?(compact_min = 16_384) ?(compact_factor = 2)
    ?(io = default_io) dir =
  mkdirs dir;
  let root =
    {
      dir;
      io;
      segment_max;
      compact_min;
      compact_factor;
      data = Hashtbl.create 64;
      views = Hashtbl.create 4;
      fd = None;
      seg_hi = 0;
      seg_lo = 0;
      seg_bytes = 0;
      dirty = false;
      live_bytes = 0;
      dead_bytes = 0;
      fsyncs = 0;
      appended = 0;
      recovery_ms = 0.;
    }
  in
  recover root;
  (* Physical bytes replayed on open are history, not new traffic. *)
  root.appended <- 0;
  { View.root; prefix = ""; c = Storage.register_view root.views ~prefix:"" }

let store ?segment_max ?compact_min ?compact_factor ?io dir =
  Storage.Packed ((module View), open_dir ?segment_max ?compact_min ?compact_factor ?io dir)
