(** CRC-32 (IEEE, reflected) over strings — the WAL record checksum. *)

val string : string -> int
(** Checksum of the whole string, in [0, 0xffffffff]. *)

val update : int -> string -> pos:int -> len:int -> int
(** Extend a running checksum with a substring ([string s] =
    [update 0 s ~pos:0 ~len]). *)
