(** In-memory {!Storage.S} instance — the simulator's default "disk".

    Contents survive a hosted node's crash/restart (the handle outlives the
    handlers); [flush] is a no-op; per-view write counters are stable
    across re-derivation of the same [sub] name. *)

module View : Storage.S

type t = View.t

val create : unit -> t

val store : unit -> Storage.t
(** A fresh packed root view. *)
