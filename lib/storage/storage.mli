(** The storage signature: pluggable durable key-value stores for replicas.

    Mirrors {!Cp_transport.Transport.S} for the disk. The engine's effect
    interpreter persists acceptor images, chosen log entries, and snapshots
    through the packed value {!t}; backends ({!Mem}, {!Wal}, {!Faulty}) are
    interchangeable instances of {!S}. Values are bytes — typed encoding
    happens above this layer (see the stable-record codecs in
    {!Cp_proto.Codec}).

    Durability contract: [put]/[remove] order records; [flush] makes them
    durable. The interpreter flushes once per [Core.step] effect batch (the
    group-commit rule), so a WAL backend pays one fsync per protocol step,
    not one per record. *)

type stats = {
  writes : int;  (** [put] calls through this view *)
  bytes_written : int;  (** value bytes across those puts *)
  bytes_used : int;  (** live footprint of this view (value bytes) *)
  fsyncs : int;  (** durable syncs of the underlying device (root-wide) *)
  bytes_appended : int;  (** physical log bytes incl. framing (root-wide) *)
  segments : int;  (** live segment files (0 for memory backends) *)
  recovery_ms : float;  (** time spent rebuilding the index on open *)
}

type view_counters = { mutable vc_writes : int; mutable vc_bytes : int }
(** Per-view write counters, registered by backends under the view's
    resolved prefix so that re-deriving a view with the same name returns
    the same cell (counters survive re-derivation). *)

val fresh_view_counters : unit -> view_counters

val register_view : (string, view_counters) Hashtbl.t -> prefix:string -> view_counters

val check_view_name : string -> unit
(** Raises [Invalid_argument] if the name contains a NUL byte (the
    namespace separator). *)

module type S = sig
  type t

  val backend : t -> string

  val put : t -> string -> string -> unit

  val get : t -> string -> string option

  val remove : t -> string -> unit

  val mem : t -> string -> bool

  val keys : t -> string list

  val sub : t -> name:string -> t

  val flush : t -> unit

  val wipe : t -> unit

  val stats : t -> stats

  val close : t -> unit
end

type t = Packed : (module S with type t = 'a) * 'a -> t

(** {1 Forwarders} — call sites read like a plain module. *)

val backend : t -> string

val put : t -> string -> string -> unit

val get : t -> string -> string option

val remove : t -> string -> unit

val mem : t -> string -> bool

val keys : t -> string list

val sub : t -> name:string -> t

val flush : t -> unit

val wipe : t -> unit

val stats : t -> stats

val close : t -> unit

val bytes_used : t -> int

val write_count : t -> int

val bytes_written : t -> int

val counter_list : t -> (string * int) list
(** Stats as metric counters ([storage_writes], [storage_fsyncs],
    [storage_bytes_appended], [storage_segments], [storage_recovery_ms],
    ...) for Prometheus rendering. *)
