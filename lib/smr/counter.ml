type state = int ref

let name = "counter"

let init () = ref 0

let apply (s : state) op =
  (match String.split_on_char ' ' op with
  | [ "INC"; n ] -> (
    match int_of_string_opt n with Some n -> s := !s + n | None -> ())
  | [ "GET" ] -> ()
  | _ -> ());
  string_of_int !s

let read_only op = op = "GET"

(* Every op reads or writes the single register (results echo the current
   value), so all commands conflict: one key, fully serial under the
   parallel applier — which is the honest declaration. *)
let conflict_keys _ = [ "c" ]

let snapshot (s : state) = string_of_int !s

let restore str : state = ref (int_of_string str)

let inc n = "INC " ^ string_of_int n

let get = "GET"

let parse = int_of_string
