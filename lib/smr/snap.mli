(** Deterministic, version-stable snapshot codec shared by the bundled
    applications. Built on {!Cp_proto.Codec}'s varint/string primitives;
    hashtable bindings are emitted sorted by key so equal states yield
    byte-identical snapshots on every OCaml version and insertion order. *)

val ( let* ) : ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result

val to_string : (Buffer.t -> unit) -> string

val of_string :
  app:string -> (string -> pos:int -> ('a * int, string) result) -> string -> 'a
(** Runs the reader over the whole string; raises [Invalid_argument] on
    malformed or trailing input (a bad snapshot is a bug, not recoverable). *)

val write_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit

val read_list :
  (string -> pos:int -> ('a * int, string) result) ->
  string ->
  pos:int ->
  ('a list * int, string) result

val sorted_bindings : (string, 'v) Hashtbl.t -> (string * 'v) list

val write_pair_ss : Buffer.t -> string * string -> unit

val read_pair_ss : string -> pos:int -> ((string * string) * int, string) result

val write_pair_si : Buffer.t -> string * int -> unit

val read_pair_si : string -> pos:int -> ((string * int) * int, string) result

val table_snapshot :
  (Buffer.t -> string * 'v -> unit) -> (string, 'v) Hashtbl.t -> string

val table_restore :
  app:string ->
  (string -> pos:int -> ((string * 'v) * int, string) result) ->
  size:int ->
  string ->
  (string, 'v) Hashtbl.t
