(** Replicated counter — the minimal application, used by the quickstart and
    by tests that only care about ordering. Operations: ["INC n"], ["GET"];
    both return the current value. *)

include Cp_proto.Appi.Sc

val inc : int -> string

val get : string

val parse : string -> int
