(** Closed-loop client: submits one operation at a time to the replica group,
    retrying on timeout and following redirects. A think time between
    operations turns a set of clients into a load generator with a
    controllable offered rate.

    The client records a complete invocation/response history, which the
    linearizability checker consumes, and per-operation latencies in its
    metrics (series ["latency"] and ["done_at"], counters ["ops_done"],
    ["client_retries"]). *)

open Cp_proto

type t

val create :
  Types.msg Cp_sim.Engine.ctx ->
  mains:int list ->
  timeout:float ->
  ?max_backoff:float ->
  ?think:float ->
  ?is_read:(string -> bool) ->
  ops:(int -> string option) ->
  unit ->
  t
(** [ops seq] supplies the operation with 1-based sequence number [seq], or
    [None] when the client is done. [mains] is the contact list (rotated on
    timeout). Operations for which [is_read] holds are submitted as
    [ClientRead] — served by a leader lease when one is held, and through
    the log otherwise; such operations must not mutate application state.

    Retransmissions back off exponentially from [timeout] up to
    [max_backoff] (default [16 *. timeout]), with multiplicative jitter;
    the backoff resets when a response arrives. A redirect naming the node
    we last contacted triggers one immediate resend per retry window
    (counter ["client_fast_resends"]) instead of waiting out the delay. *)

val retry_delay : base:float -> cap:float -> attempt:int -> jitter:float -> float
(** The retransmission schedule, exposed for tests: [attempt] 0 is the first
    send. [min cap (base * 2^attempt)] scaled by a jitter factor in
    [0.75 +. 0.5 *. jitter] with [jitter] uniform in [0, 1). *)

val handlers : t -> Types.msg Cp_sim.Engine.handlers

val done_count : t -> int

val is_finished : t -> bool

val history : t -> (float * float * string * string) list
(** Completed operations as [(invoked_at, completed_at, op, result)],
    in completion order. *)
