(* Shared snapshot codec for the bundled applications. Marshal output is not
   stable across OCaml versions (CI builds 4.14 and 5.2 against the same
   on-wire bytes), so snapshots use the same varint/length-prefixed-string
   primitives as the message codec, with hashtable bindings sorted by key so
   equal states produce byte-identical snapshots regardless of insertion
   order. *)

module Codec = Cp_proto.Codec

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let to_string f =
  let buf = Buffer.create 256 in
  f buf;
  Buffer.contents buf

(* Restore raises on malformed input, like [Marshal.from_string] did; a bad
   snapshot is a bug (or corruption), not a recoverable condition. *)
let of_string ~app read s =
  match read s ~pos:0 with
  | Ok (v, pos) when pos = String.length s -> v
  | Ok _ -> invalid_arg (app ^ ": snapshot has trailing bytes")
  | Error e -> invalid_arg (app ^ ": malformed snapshot (" ^ e ^ ")")

let write_list buf write xs =
  Codec.write_varint buf (List.length xs);
  List.iter (write buf) xs

let read_list read s ~pos =
  let* count, pos = Codec.read_varint s ~pos in
  if count < 0 || count > String.length s then Error "list: bad count"
  else begin
    let rec go i pos acc =
      if i = count then Ok (List.rev acc, pos)
      else
        let* x, pos = read s ~pos in
        go (i + 1) pos (x :: acc)
    in
    go 0 pos []
  end

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let write_pair_ss buf (k, v) =
  Codec.write_string buf k;
  Codec.write_string buf v

let read_pair_ss s ~pos =
  let* k, pos = Codec.read_string s ~pos in
  let* v, pos = Codec.read_string s ~pos in
  Ok ((k, v), pos)

let write_pair_si buf (k, v) =
  Codec.write_string buf k;
  Codec.write_varint buf v

let read_pair_si s ~pos =
  let* k, pos = Codec.read_string s ~pos in
  let* v, pos = Codec.read_varint s ~pos in
  Ok ((k, v), pos)

let table_snapshot write tbl = to_string (fun buf -> write_list buf write (sorted_bindings tbl))

let table_restore ~app read ~size str =
  let pairs = of_string ~app (read_list read) str in
  let tbl = Hashtbl.create (max size (List.length pairs)) in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) pairs;
  tbl
