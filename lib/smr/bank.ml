module Stripes = Cp_exec.Stripes

(* Striped for the parallel applier: per-account ops on different accounts
   may run on different domains. TRANSFER declares both accounts, TOTAL the
   wildcard, so the applier serializes them against everything they touch. *)
type state = int Stripes.t

let name = "bank"

let init () : state = Stripes.create ()

let apply (s : state) op =
  let bal a = Stripes.find_opt s a in
  match String.split_on_char ' ' op with
  | [ "OPEN"; a; n ] -> (
    match (bal a, int_of_string_opt n) with
    | None, Some n when n >= 0 ->
      Stripes.replace s a n;
      "OK"
    | _ -> "FAIL")
  | [ "DEPOSIT"; a; n ] -> (
    match (bal a, int_of_string_opt n) with
    | Some b, Some n when n >= 0 ->
      Stripes.replace s a (b + n);
      "OK"
    | _ -> "FAIL")
  | [ "WITHDRAW"; a; n ] -> (
    match (bal a, int_of_string_opt n) with
    | Some b, Some n when n >= 0 && b >= n ->
      Stripes.replace s a (b - n);
      "OK"
    | _ -> "FAIL")
  | [ "TRANSFER"; a; b; n ] -> (
    match (bal a, bal b, int_of_string_opt n) with
    | Some ba, Some bb, Some n when n >= 0 && ba >= n && a <> b ->
      Stripes.replace s a (ba - n);
      Stripes.replace s b (bb + n);
      "OK"
    | _ -> "FAIL")
  | [ "BALANCE"; a ] -> (
    match bal a with Some b -> string_of_int b | None -> "FAIL")
  | [ "TOTAL" ] -> string_of_int (Stripes.fold s (fun _ b acc -> acc + b) 0)
  | _ -> "ERR"

let read_only op =
  match String.split_on_char ' ' op with
  | [ "BALANCE"; _ ] | [ "TOTAL" ] -> true
  | _ -> false

let conflict_keys op =
  match String.split_on_char ' ' op with
  | [ "OPEN"; a; _ ] | [ "DEPOSIT"; a; _ ] | [ "WITHDRAW"; a; _ ] | [ "BALANCE"; a ]
    ->
    [ a ]
  | [ "TRANSFER"; a; b; _ ] -> [ a; b ]
  | _ -> [ Cp_proto.Appi.wildcard ]

let snapshot (s : state) = Snap.table_snapshot Snap.write_pair_si (Stripes.merged s)

let restore str : state =
  Stripes.of_table (Snap.table_restore ~app:name Snap.read_pair_si ~size:16 str)

let open_ a n = Printf.sprintf "OPEN %s %d" a n

let deposit a n = Printf.sprintf "DEPOSIT %s %d" a n

let withdraw a n = Printf.sprintf "WITHDRAW %s %d" a n

let transfer a b n = Printf.sprintf "TRANSFER %s %s %d" a b n

let balance a = "BALANCE " ^ a

let total = "TOTAL"
