type state = (string, int) Hashtbl.t

let name = "bank"

let init () : state = Hashtbl.create 16

let apply (s : state) op =
  let bal a = Hashtbl.find_opt s a in
  match String.split_on_char ' ' op with
  | [ "OPEN"; a; n ] -> (
    match (bal a, int_of_string_opt n) with
    | None, Some n when n >= 0 ->
      Hashtbl.replace s a n;
      "OK"
    | _ -> "FAIL")
  | [ "DEPOSIT"; a; n ] -> (
    match (bal a, int_of_string_opt n) with
    | Some b, Some n when n >= 0 ->
      Hashtbl.replace s a (b + n);
      "OK"
    | _ -> "FAIL")
  | [ "WITHDRAW"; a; n ] -> (
    match (bal a, int_of_string_opt n) with
    | Some b, Some n when n >= 0 && b >= n ->
      Hashtbl.replace s a (b - n);
      "OK"
    | _ -> "FAIL")
  | [ "TRANSFER"; a; b; n ] -> (
    match (bal a, bal b, int_of_string_opt n) with
    | Some ba, Some _, Some n when n >= 0 && ba >= n && a <> b ->
      Hashtbl.replace s a (ba - n);
      Hashtbl.replace s b (Hashtbl.find s b + n);
      "OK"
    | _ -> "FAIL")
  | [ "BALANCE"; a ] -> (
    match bal a with Some b -> string_of_int b | None -> "FAIL")
  | [ "TOTAL" ] ->
    string_of_int (Hashtbl.fold (fun _ b acc -> acc + b) s 0)
  | _ -> "ERR"

let read_only op =
  match String.split_on_char ' ' op with
  | [ "BALANCE"; _ ] | [ "TOTAL" ] -> true
  | _ -> false

let snapshot (s : state) = Snap.table_snapshot Snap.write_pair_si s

let restore str : state = Snap.table_restore ~app:name Snap.read_pair_si ~size:16 str

let open_ a n = Printf.sprintf "OPEN %s %d" a n

let deposit a n = Printf.sprintf "DEPOSIT %s %d" a n

let withdraw a n = Printf.sprintf "WITHDRAW %s %d" a n

let transfer a b n = Printf.sprintf "TRANSFER %s %s %d" a b n

let balance a = "BALANCE " ^ a

let total = "TOTAL"
