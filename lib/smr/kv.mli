(** Replicated key-value store.

    Operations (also constructible/parsable through the typed helpers):
    ["GET k"], ["PUT k v"], ["DEL k"], ["CAS k old new"]. Results: ["OK"],
    ["NONE"], the value, or ["FAIL"] for a failed compare-and-swap. Keys and
    values must not contain spaces (the workload generators comply). *)

include Cp_proto.Appi.Sc

val get : string -> string

val put : string -> string -> string

val del : string -> string

val cas : string -> old:string -> new_:string -> string

type result = Ok | None_ | Value of string | Fail

val parse_result : string -> result
