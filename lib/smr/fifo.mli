(** Replicated FIFO queue. Operations: ["PUSH v"], ["POP"], ["LEN"].
    Results: ["OK"], the popped value, ["EMPTY"], or the length. *)

include Cp_proto.Appi.Sc

val push : string -> string

val pop : string

val len : string
