type state = (string, string) Hashtbl.t (* lock -> owner *)

let name = "lock"

let init () : state = Hashtbl.create 16

let apply (s : state) op =
  match String.split_on_char ' ' op with
  | [ "ACQUIRE"; owner; lock ] -> (
    match Hashtbl.find_opt s lock with
    | None ->
      Hashtbl.replace s lock owner;
      "OK"
    | Some o when o = owner -> "OK"
    | Some o -> "BUSY " ^ o)
  | [ "RELEASE"; owner; lock ] -> (
    match Hashtbl.find_opt s lock with
    | Some o when o = owner ->
      Hashtbl.remove s lock;
      "OK"
    | Some _ | None -> "FAIL")
  | [ "HOLDER"; lock ] -> (
    match Hashtbl.find_opt s lock with Some o -> o | None -> "NONE")
  | _ -> "ERR"

let read_only op =
  match String.split_on_char ' ' op with [ "HOLDER"; _ ] -> true | _ -> false

let snapshot (s : state) = Snap.table_snapshot Snap.write_pair_ss s

let restore str : state = Snap.table_restore ~app:name Snap.read_pair_ss ~size:16 str

let acquire ~owner lock = Printf.sprintf "ACQUIRE %s %s" owner lock

let release ~owner lock = Printf.sprintf "RELEASE %s %s" owner lock

let holder lock = "HOLDER " ^ lock
