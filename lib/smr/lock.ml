module Stripes = Cp_exec.Stripes

(* lock -> owner; striped so independent locks contend nowhere. *)
type state = string Stripes.t

let name = "lock"

let init () : state = Stripes.create ()

let apply (s : state) op =
  match String.split_on_char ' ' op with
  | [ "ACQUIRE"; owner; lock ] ->
    Stripes.with_key s lock (fun tbl ->
        match Hashtbl.find_opt tbl lock with
        | None ->
          Hashtbl.replace tbl lock owner;
          "OK"
        | Some o when o = owner -> "OK"
        | Some o -> "BUSY " ^ o)
  | [ "RELEASE"; owner; lock ] ->
    Stripes.with_key s lock (fun tbl ->
        match Hashtbl.find_opt tbl lock with
        | Some o when o = owner ->
          Hashtbl.remove tbl lock;
          "OK"
        | Some _ | None -> "FAIL")
  | [ "HOLDER"; lock ] -> (
    match Stripes.find_opt s lock with Some o -> o | None -> "NONE")
  | _ -> "ERR"

let read_only op =
  match String.split_on_char ' ' op with [ "HOLDER"; _ ] -> true | _ -> false

let conflict_keys op =
  match String.split_on_char ' ' op with
  | [ "ACQUIRE"; _; lock ] | [ "RELEASE"; _; lock ] | [ "HOLDER"; lock ] ->
    [ lock ]
  | _ -> [ Cp_proto.Appi.wildcard ]

let snapshot (s : state) = Snap.table_snapshot Snap.write_pair_ss (Stripes.merged s)

let restore str : state =
  Stripes.of_table (Snap.table_restore ~app:name Snap.read_pair_ss ~size:16 str)

let acquire ~owner lock = Printf.sprintf "ACQUIRE %s %s" owner lock

let release ~owner lock = Printf.sprintf "RELEASE %s %s" owner lock

let holder lock = "HOLDER " ^ lock
