(** Replicated bank: accounts with non-negative balances and atomic
    transfers. The conserved-total invariant makes it a sharp correctness
    probe: any lost, duplicated, or reordered-inconsistently command shows up
    as money appearing or vanishing.

    Operations: ["OPEN a n"] (create account [a] with balance [n]),
    ["DEPOSIT a n"], ["WITHDRAW a n"], ["TRANSFER a b n"], ["BALANCE a"],
    ["TOTAL"]. Results: ["OK"], ["FAIL"] (unknown account / insufficient
    funds), or a number. *)

include Cp_proto.Appi.Sc

val open_ : string -> int -> string

val deposit : string -> int -> string

val withdraw : string -> int -> string

val transfer : string -> string -> int -> string

val balance : string -> string

val total : string
