(** Replicated lock service (à la Chubby's core): named mutexes with owners.
    Because lock acquisition is decided by log order, two clients racing for
    a lock get a deterministic, replica-consistent winner.

    Operations: ["ACQUIRE owner lock"], ["RELEASE owner lock"],
    ["HOLDER lock"]. Results: ["OK"], ["BUSY holder"], ["FAIL"] (release by
    non-owner), ["NONE"] (unheld). Re-acquiring a lock you already hold is
    ["OK"] (idempotent). *)

include Cp_proto.Appi.Sc

val acquire : owner:string -> string -> string

val release : owner:string -> string -> string

val holder : string -> string
