type state = (string, string) Hashtbl.t

let name = "kv"

let init () : state = Hashtbl.create 64

let apply (s : state) op =
  match String.split_on_char ' ' op with
  | [ "GET"; k ] -> (
    match Hashtbl.find_opt s k with Some v -> v | None -> "NONE")
  | [ "PUT"; k; v ] ->
    Hashtbl.replace s k v;
    "OK"
  | [ "DEL"; k ] ->
    Hashtbl.remove s k;
    "OK"
  | [ "CAS"; k; old; new_ ] -> (
    match Hashtbl.find_opt s k with
    | Some v when v = old ->
      Hashtbl.replace s k new_;
      "OK"
    | Some _ | None -> "FAIL")
  | _ -> "ERR"

let read_only op =
  match String.split_on_char ' ' op with [ "GET"; _ ] -> true | _ -> false

let snapshot (s : state) = Snap.table_snapshot Snap.write_pair_ss s

let restore str : state = Snap.table_restore ~app:name Snap.read_pair_ss ~size:64 str

let get k = "GET " ^ k

let put k v = Printf.sprintf "PUT %s %s" k v

let del k = "DEL " ^ k

let cas k ~old ~new_ = Printf.sprintf "CAS %s %s %s" k old new_

type result = Ok | None_ | Value of string | Fail

let parse_result = function
  | "OK" -> Ok
  | "NONE" -> None_
  | "FAIL" -> Fail
  | v -> Value v
