module Stripes = Cp_exec.Stripes

(* Striped so the parallel applier may run different-key ops on different
   domains; the applier guarantees same-key ops never run concurrently,
   and the stripe locks cover different keys sharing a stripe. Snapshots
   merge and sort, so the bytes are identical to the old flat Hashtbl. *)
type state = string Stripes.t

let name = "kv"

let init () : state = Stripes.create ()

let apply (s : state) op =
  match String.split_on_char ' ' op with
  | [ "GET"; k ] -> (
    match Stripes.find_opt s k with Some v -> v | None -> "NONE")
  | [ "PUT"; k; v ] ->
    Stripes.replace s k v;
    "OK"
  | [ "DEL"; k ] ->
    Stripes.remove s k;
    "OK"
  | [ "CAS"; k; old; new_ ] ->
    (* Read-modify-write under the stripe lock: per-key atomicity even if
       a same-stripe (different-key) op runs concurrently. *)
    Stripes.with_key s k (fun tbl ->
        match Hashtbl.find_opt tbl k with
        | Some v when v = old ->
          Hashtbl.replace tbl k new_;
          "OK"
        | Some _ | None -> "FAIL")
  | _ -> "ERR"

let read_only op =
  match String.split_on_char ' ' op with [ "GET"; _ ] -> true | _ -> false

let conflict_keys op =
  match String.split_on_char ' ' op with
  | [ "GET"; k ] | [ "PUT"; k; _ ] | [ "DEL"; k ] | [ "CAS"; k; _; _ ] -> [ k ]
  | _ -> [ Cp_proto.Appi.wildcard ]

let snapshot (s : state) = Snap.table_snapshot Snap.write_pair_ss (Stripes.merged s)

let restore str : state =
  Stripes.of_table (Snap.table_restore ~app:name Snap.read_pair_ss ~size:64 str)

let get k = "GET " ^ k

let put k v = Printf.sprintf "PUT %s %s" k v

let del k = "DEL " ^ k

let cas k ~old ~new_ = Printf.sprintf "CAS %s %s %s" k old new_

type result = Ok | None_ | Value of string | Fail

let parse_result = function
  | "OK" -> Ok
  | "NONE" -> None_
  | "FAIL" -> Fail
  | v -> Value v
