(* Two-list functional queue so snapshots serialize structurally. *)
type state = { mutable front : string list; mutable back : string list }

let name = "fifo"

let init () = { front = []; back = [] }

let apply (s : state) op =
  match String.split_on_char ' ' op with
  | [ "PUSH"; v ] ->
    s.back <- v :: s.back;
    "OK"
  | [ "POP" ] -> (
    (match s.front with
    | [] ->
      s.front <- List.rev s.back;
      s.back <- []
    | _ :: _ -> ());
    match s.front with
    | [] -> "EMPTY"
    | v :: rest ->
      s.front <- rest;
      v)
  | [ "LEN" ] -> string_of_int (List.length s.front + List.length s.back)
  | _ -> "ERR"

(* POP mutates (it dequeues), so only LEN rides the lease fast path. *)
let read_only op = op = "LEN"

(* PUSH/POP/LEN all observe or mutate the one queue: fully serial. *)
let conflict_keys _ = [ "q" ]

let snapshot (s : state) =
  Snap.to_string (fun buf ->
      Snap.write_list buf Cp_proto.Codec.write_string s.front;
      Snap.write_list buf Cp_proto.Codec.write_string s.back)

let restore str : state =
  let read s ~pos =
    let open Snap in
    let* front, pos = read_list Cp_proto.Codec.read_string s ~pos in
    let* back, pos = read_list Cp_proto.Codec.read_string s ~pos in
    Ok ({ front; back }, pos)
  in
  Snap.of_string ~app:name read str

let push v = "PUSH " ^ v

let pop = "POP"

let len = "LEN"
