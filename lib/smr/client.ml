open Cp_proto
module Engine = Cp_sim.Engine
module Metrics = Cp_sim.Metrics

type t = {
  ctx : Types.msg Engine.ctx;
  mains : int array;
  timeout : float; (* base retry delay *)
  max_backoff : float; (* cap on the un-jittered retry delay *)
  think : float;
  ops : int -> string option;
  is_read : string -> bool;
  mutable seq : int;
  mutable op : string option;
  mutable hint : int; (* index into mains *)
  mutable attempts : int; (* consecutive unanswered sends of the current op *)
  mutable fast_resend : bool; (* one redirect-triggered resend per retry window *)
  mutable invoked_at : float;
  mutable retry_timer : int option;
  mutable finished : bool;
  mutable completed : int;
  mutable hist : (float * float * string * string) list; (* reversed *)
}

let now t = t.ctx.Engine.now ()

(* [attempt] 0 is the first send. The cap bounds the exponential term; the
   jitter factor in [0.75, 1.25) then spreads retransmissions so that clients
   that timed out together do not retry in lockstep forever. *)
let retry_delay ~base ~cap ~attempt ~jitter =
  let d = min cap (base *. (2. ** float_of_int attempt)) in
  d *. (0.75 +. (0.5 *. jitter))

let cancel_retry t =
  match t.retry_timer with
  | Some tid ->
    t.ctx.Engine.cancel_timer tid;
    t.retry_timer <- None
  | None -> ()

let send_current t =
  match t.op with
  | None -> ()
  | Some op ->
    let dst = t.mains.(t.hint) in
    let cmd = { Types.client = t.ctx.Engine.self; seq = t.seq; op } in
    t.ctx.Engine.send dst
      (if t.is_read op then Types.ClientRead cmd else Types.ClientReq cmd);
    cancel_retry t;
    let delay =
      retry_delay ~base:t.timeout ~cap:t.max_backoff ~attempt:t.attempts
        ~jitter:(Cp_util.Rng.float t.ctx.Engine.rng 1.)
    in
    t.retry_timer <- Some (t.ctx.Engine.set_timer ~tag:"retry" delay)

let begin_op t =
  match t.ops t.seq with
  | None ->
    t.finished <- true;
    t.op <- None;
    cancel_retry t
  | Some op ->
    t.op <- Some op;
    t.attempts <- 0;
    t.fast_resend <- true;
    t.invoked_at <- now t;
    send_current t

let advance t =
  t.seq <- t.seq + 1;
  if t.think > 0. then begin
    t.op <- None;
    ignore (t.ctx.Engine.set_timer ~tag:"think" t.think)
  end
  else begin_op t

let on_response t ~seq ~result =
  if (not t.finished) && seq = t.seq && t.op <> None then begin
    let op = Option.get t.op in
    let t_done = now t in
    t.hist <- (t.invoked_at, t_done, op, result) :: t.hist;
    t.completed <- t.completed + 1;
    Metrics.observe t.ctx.Engine.metrics "latency" (t_done -. t.invoked_at);
    Metrics.observe t.ctx.Engine.metrics "done_at" t_done;
    Metrics.incr t.ctx.Engine.metrics "ops_done";
    cancel_retry t;
    advance t
  end

let on_redirect t ~leader_hint =
  if not t.finished then begin
    let idx = ref None in
    Array.iteri (fun i m -> if m = leader_hint then idx := Some i) t.mains;
    match !idx with
    | Some i when i <> t.hint ->
      t.hint <- i;
      send_current t
    | Some _ when t.fast_resend ->
      (* The hint already points where we last sent — our request (or its
         reply) was probably lost. Resend immediately instead of waiting out
         the full retry delay, but only once per window: if the hinted node
         keeps redirecting us back at itself, we fall back to the backoff
         timer rather than looping. *)
      t.fast_resend <- false;
      Metrics.incr t.ctx.Engine.metrics "client_fast_resends";
      send_current t
    | Some _ | None -> () (* unknown hint, or already fast-resent: wait *)
  end

let on_retry t =
  t.retry_timer <- None;
  if (not t.finished) && t.op <> None then begin
    t.hint <- (t.hint + 1) mod Array.length t.mains;
    t.attempts <- t.attempts + 1;
    t.fast_resend <- true;
    Metrics.incr t.ctx.Engine.metrics "client_retries";
    send_current t
  end

let create ctx ~mains ~timeout ?max_backoff ?(think = 0.) ?(is_read = fun _ -> false)
    ~ops () =
  if mains = [] then invalid_arg "Client.create: empty contact list";
  if timeout <= 0. then invalid_arg "Client.create: timeout must be positive";
  let max_backoff = Option.value max_backoff ~default:(16. *. timeout) in
  let t =
    {
      ctx;
      mains = Array.of_list mains;
      timeout;
      max_backoff;
      think;
      ops;
      is_read;
      seq = 1;
      op = None;
      hint = 0;
      attempts = 0;
      fast_resend = true;
      invoked_at = 0.;
      retry_timer = None;
      finished = false;
      completed = 0;
      hist = [];
    }
  in
  begin_op t;
  t

let handlers t =
  let on_message ~src:_ msg =
    match (msg : Types.msg) with
    | Types.ClientResp { seq; result; _ } -> on_response t ~seq ~result
    | Types.Redirect { leader_hint } -> on_redirect t ~leader_hint
    | _ -> ()
  in
  let on_timer ~tid:_ ~tag =
    match tag with
    | "retry" -> on_retry t
    | "think" -> if not t.finished then begin_op t
    | _ -> ()
  in
  { Engine.on_message; on_timer }

let done_count t = t.completed

let is_finished t = t.finished

let history t = List.rev t.hist
