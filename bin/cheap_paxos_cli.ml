(* Command-line entry point: run the evaluation, single experiments, or a
   traced demo cluster. *)

open Cmdliner
module Experiments = Cp_harness.Experiments
module Outcome = Cp_harness.Outcome

let run_experiments quick only csv_dir =
  let exps =
    match only with
    | [] -> Experiments.all
    | ids ->
      List.filter
        (fun e -> List.mem (String.lowercase_ascii e.Experiments.eid) ids)
        Experiments.all
  in
  if exps = [] then begin
    Printf.eprintf "no experiment matches; known: %s\n"
      (String.concat ", " (List.map (fun e -> e.Experiments.eid) Experiments.all));
    exit 2
  end;
  let write_csv name table =
    match csv_dir with
    | None -> ()
    | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path = Filename.concat dir (String.lowercase_ascii name ^ ".csv") in
      let oc = open_out path in
      output_string oc (Cp_util.Table.to_csv table);
      close_out oc;
      Printf.printf "wrote %s\n" path
  in
  let outcomes =
    List.concat_map
      (fun e ->
        let table, outcomes = e.Experiments.run ~quick in
        Cp_util.Table.print
          ~title:(Printf.sprintf "%s: %s" e.Experiments.eid e.Experiments.title)
          table;
        write_csv e.Experiments.eid table;
        outcomes)
      exps
  in
  Cp_util.Table.print ~title:"Claim-by-claim verdicts" (Outcome.to_table outcomes);
  write_csv "verdicts" (Outcome.to_table outcomes);
  if Outcome.all_pass outcomes then 0 else 1

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Shrink sweeps for a fast run.")

let only_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "only" ] ~docv:"ID" ~doc:"Run only the given experiment (repeatable), e.g. e3.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR" ~doc:"Also write every table as CSV into $(docv).")

let experiments_cmd =
  let doc = "Run the evaluation suite (all tables; see DESIGN.md section 7)." in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(
      const (fun quick only csv ->
          Stdlib.exit (run_experiments quick (List.map String.lowercase_ascii only) csv))
      $ quick_flag $ only_arg $ csv_arg)

(* --storage spec: "mem" (default) or "wal:DIR" — a durable group-commit
   write-ahead log rooted at DIR, one subdirectory per machine (demo) or
   per hosted group (node). *)
let storage_conv =
  let parse s =
    if s = "mem" then Ok `Mem
    else if String.length s > 4 && String.sub s 0 4 = "wal:" then
      Ok (`Wal (String.sub s 4 (String.length s - 4)))
    else Error (`Msg (Printf.sprintf "bad storage spec %S (expected mem or wal:DIR)" s))
  in
  let print ppf = function
    | `Mem -> Format.pp_print_string ppf "mem"
    | `Wal d -> Format.fprintf ppf "wal:%s" d
  in
  Arg.conv (parse, print)

let storage_arg ~unit_ =
  Arg.(
    value
    & opt storage_conv `Mem
    & info [ "storage" ] ~docv:"SPEC"
        ~doc:
          (Printf.sprintf
             "Stable-storage backend: $(b,mem) (default, lost on exit) or \
              $(b,wal:DIR) — a group-commit segmented write-ahead log rooted at \
              $(i,DIR) (one subdirectory per %s), replayed on restart."
             unit_))

(* Per-machine WAL factory for the simulated runtimes, or None for the
   in-memory default. *)
let sim_storage_factory = function
  | `Mem -> None
  | `Wal dir ->
    Some (fun id -> Cp_storage.Wal.store (Filename.concat dir (Printf.sprintf "n%d" id)))

(* One summary line so a demo run over a WAL shows the durable cost. *)
let print_storage_summary spec engine ids =
  match spec with
  | `Mem -> ()
  | `Wal dir ->
    let stats = List.map (fun id -> Cp_sim.Stable.stats (Cp_sim.Engine.stable engine id)) ids in
    let sum f = List.fold_left (fun acc s -> acc + f s) 0 stats in
    Printf.printf
      "storage: wal at %s — fsyncs=%d appended=%d bytes live=%d bytes segments=%d\n" dir
      (sum (fun s -> s.Cp_storage.Storage.fsyncs))
      (sum (fun s -> s.Cp_storage.Storage.bytes_appended))
      (sum (fun s -> s.Cp_storage.Storage.bytes_used))
      (sum (fun s -> s.Cp_storage.Storage.segments))

(* Multi-group variant of the demo: one machine set hosting [groups]
   key-sharded Cheap Paxos groups behind a {!Cp_fleet.Group_mux}, clients
   routed per-command by key. Prints the per-group leaders, shard spread,
   and the per-group frame counts on the shared auxiliary. *)
let run_fleet_demo seed trace trace_jsonl trace_chrome params ?conflict_keys ~storage
    read_ratio groups =
  let module Fleet = Cp_fleet.Fleet in
  let module Engine = Cp_sim.Engine in
  let initial = Cheap_paxos.Cheap.initial_config ~f:1 in
  let fleet =
    Fleet.create ~seed ~params ~groups ?conflict_keys
      ?storage:(sim_storage_factory storage) ~policy:Cheap_paxos.Cheap.policy ~initial
      ~app:(module Cp_smr.Kv) ()
  in
  if trace then
    Engine.on_event (Fleet.engine fleet) (fun r ->
        Format.printf "%a@." Cp_obs.Trace.pp_record r);
  let handles =
    List.init 4 (fun i ->
        let rng = Cp_util.Rng.create (seed + (31 * i)) in
        let ops = Cp_workload.Workload.kv_ops ~rng ~keys:64 ~read_ratio ~count:60 () in
        Fleet.add_client fleet ~think:1e-3 ~is_read:Cp_smr.Kv.read_only ~ops ())
  in
  let finished =
    Fleet.run_until fleet ~deadline:10. (fun () ->
        List.for_all (fun (_, c) -> Cp_smr.Client.is_finished c) handles)
  in
  let done_count =
    List.fold_left (fun acc (_, c) -> acc + Cp_smr.Client.done_count c) 0 handles
  in
  Printf.printf "\nfinished=%b ops=%d groups=%d\n" finished done_count groups;
  List.iter
    (fun gid ->
      let leader =
        match Fleet.leader fleet ~gid with Some l -> string_of_int l | None -> "none"
      in
      let chosen = Fleet.sum_group_metric fleet ~ids:(Fleet.mains fleet) ~gid "chosen" in
      let lease_reads =
        Fleet.sum_group_metric fleet ~ids:(Fleet.mains fleet) ~gid "lease_reads"
      in
      Printf.printf "group %d: leader=%s chosen=%d lease_reads=%d\n" gid leader chosen
        lease_reads)
    (List.init groups Fun.id);
  List.iter
    (fun (aux, gid, n) -> Printf.printf "aux %d group %d: frames received=%d\n" aux gid n)
    (Fleet.aux_group_recv fleet);
  let dump path render what =
    let records = Cp_obs.Trace.merge (Engine.traces (Fleet.engine fleet)) in
    let oc = open_out path in
    output_string oc (render records);
    Printf.printf "wrote %s trace for %d records to %s\n" what (List.length records) path;
    close_out oc
  in
  Option.iter (fun p -> dump p Cp_obs.Trace.to_jsonl "jsonl") trace_jsonl;
  Option.iter (fun p -> dump p Cp_obs.Timeline.to_chrome "Chrome") trace_chrome;
  print_storage_summary storage (Fleet.engine fleet) (Fleet.mains fleet @ Fleet.auxes fleet);
  if finished then 0 else 1

let run_demo seed trace trace_jsonl trace_chrome batch pipeline linger read_ratio lease
    gap_threshold groups domains exec_par storage =
  let module Cluster = Cp_runtime.Cluster in
  let module Faults = Cp_runtime.Faults in
  let initial = Cheap_paxos.Cheap.initial_config ~f:1 in
  let params =
    {
      Cp_engine.Params.default with
      Cp_engine.Params.batch_max_cmds = batch;
      pipeline_window = pipeline;
      batch_linger = linger;
      enable_leases = lease;
      gap_threshold;
      exec_domains = (if exec_par then max domains 1 else 1);
    }
  in
  (* With --exec-par the mains execute through the conflict-aware parallel
     applier using the KV app's real key declarations. *)
  let conflict_keys = if exec_par then Some Cp_smr.Kv.conflict_keys else None in
  if groups > 1 then
    run_fleet_demo seed trace trace_jsonl trace_chrome params ?conflict_keys ~storage
      read_ratio groups
  else
  let cluster =
    Cluster.create ~seed ~params ?conflict_keys ?storage:(sim_storage_factory storage)
      ~policy:Cheap_paxos.Cheap.policy ~initial ~app:(module Cp_smr.Kv) ()
  in
  if trace then
    Cp_sim.Engine.on_event (Cluster.engine cluster) (fun r ->
        Format.printf "%a@." Cp_obs.Trace.pp_record r);
  let rng = Cp_util.Rng.create seed in
  let ops = Cp_workload.Workload.kv_ops ~rng ~keys:8 ~read_ratio ~count:60 () in
  (* A little think time stretches the run past the fault window, so the
     trace actually shows the failover story (engage → remove → quiesce). *)
  let _, client =
    Cluster.add_client cluster ~think:2e-3 ~is_read:Cp_smr.Kv.read_only ~ops ()
  in
  Faults.schedule cluster [ (0.02, Faults.Crash 1); (0.2, Faults.Restart 1) ];
  let finished =
    Cluster.run_until cluster ~deadline:5. (fun () -> Cp_smr.Client.is_finished client)
  in
  Printf.printf "\nfinished=%b ops=%d leader=%s\n" finished
    (Cp_smr.Client.done_count client)
    (match Cluster.leader cluster with Some l -> string_of_int l | None -> "none");
  if lease then
    Printf.printf "lease reads served locally: %d (fallbacks to ordering: %d)\n"
      (Cluster.sum_metric cluster ~ids:(Cluster.mains cluster) "lease_reads")
      (Cluster.sum_metric cluster ~ids:(Cluster.mains cluster) "lease_read_fallbacks");
  if exec_par then
    Printf.printf
      "parallel execution (%d domains): %d parallel windows, %d serial windows, %d \
       conflict-serialized ops, %d barrier ops\n"
      params.Cp_engine.Params.exec_domains
      (Cluster.sum_metric cluster ~ids:(Cluster.mains cluster) "exec_parallel_batches")
      (Cluster.sum_metric cluster ~ids:(Cluster.mains cluster) "exec_serial_batches")
      (Cluster.sum_metric cluster ~ids:(Cluster.mains cluster) "exec_conflict_serialized")
      (Cluster.sum_metric cluster ~ids:(Cluster.mains cluster) "exec_barrier_ops");
  (match trace_jsonl with
  | None -> ()
  | Some path ->
    let records = Cp_runtime.Inspect.trace_dump cluster in
    let oc = open_out path in
    output_string oc (Cp_obs.Trace.to_jsonl records);
    close_out oc;
    Printf.printf "wrote %d trace records to %s\n" (List.length records) path);
  (match trace_chrome with
  | None -> ()
  | Some path ->
    let records = Cp_runtime.Inspect.trace_dump cluster in
    let oc = open_out path in
    output_string oc (Cp_obs.Timeline.to_chrome records);
    close_out oc;
    Printf.printf
      "wrote Chrome trace for %d records to %s (load at https://ui.perfetto.dev)\n"
      (List.length records) path);
  (match Cp_runtime.Inspect.check_safety cluster with
  | Ok () -> print_endline "safety: OK"
  | Error e -> Printf.printf "safety: VIOLATION: %s\n" e);
  print_storage_summary storage (Cluster.engine cluster)
    (Cluster.mains cluster @ Cluster.auxes cluster);
  0

let demo_cmd =
  let doc = "Run a small Cheap Paxos cluster with a crash/restart, optionally traced." in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.") in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print typed protocol events as they happen.")
  in
  let trace_jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-jsonl" ] ~docv:"FILE"
          ~doc:"Dump the merged cluster event trace to $(docv) as JSON lines.")
  in
  let trace_chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-chrome" ] ~docv:"FILE"
          ~doc:
            "Export the merged cluster event trace to $(docv) as Chrome trace-event \
             JSON (one lane per node, one async span per causal chain); load it at \
             ui.perfetto.dev or chrome://tracing.")
  in
  let batch =
    Arg.(
      value
      & opt int Cp_engine.Params.default.Cp_engine.Params.batch_max_cmds
      & info [ "batch" ] ~docv:"N" ~doc:"Max client commands per log instance.")
  in
  let pipeline =
    Arg.(
      value
      & opt int Cp_engine.Params.default.Cp_engine.Params.pipeline_window
      & info [ "pipeline" ] ~docv:"W"
          ~doc:"Max simultaneously outstanding (unchosen) instances at the leader.")
  in
  let linger =
    Arg.(
      value
      & opt float Cp_engine.Params.default.Cp_engine.Params.batch_linger
      & info [ "linger" ] ~docv:"SECONDS"
          ~doc:"How long the leader may hold a non-full batch open for more commands.")
  in
  let read_ratio =
    Arg.(
      value
      & opt float 0.4
      & info [ "read-ratio" ] ~docv:"R"
          ~doc:"Fraction of client operations that are GETs (0.0-1.0).")
  in
  let lease =
    Arg.(
      value & flag
      & info [ "lease" ]
          ~doc:
            "Enable leader leases: reads are served from the leader's executed \
             state without a consensus instance while its lease holds.")
  in
  let gap_threshold =
    Arg.(
      value
      & opt int Cp_engine.Params.default.Cp_engine.Params.gap_threshold
      & info [ "gap-threshold" ] ~docv:"N"
          ~doc:
            "How many instances a replica lets its chosen prefix trail a peer's \
             announced commit point before actively requesting catch-up.")
  in
  let groups =
    Arg.(
      value
      & opt int 1
      & info [ "groups" ] ~docv:"N"
          ~doc:
            "Host $(docv) key-sharded Cheap Paxos groups on the same machine set \
             (one shared auxiliary). With N > 1 the demo runs the fleet runtime: \
             routed clients, per-group leaders, per-group auxiliary quiescence.")
  in
  let domains =
    Arg.(
      value
      & opt int 4
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker-domain count for $(b,--exec-par): commands on disjoint keys \
             execute concurrently on up to $(docv) domains of the process pool.")
  in
  let exec_par =
    Arg.(
      value & flag
      & info [ "exec-par" ]
          ~doc:
            "Execute chosen commands through the conflict-aware parallel applier \
             (lib/exec) using the KV app's per-key conflict declarations, instead \
             of the serial apply loop. Results are identical; the demo prints the \
             parallel/serialized window counters.")
  in
  Cmd.v (Cmd.info "demo" ~doc)
    Term.(
      const (fun s t j c b p l r le g gr d ep st ->
          Stdlib.exit (run_demo s t j c b p l r le g gr d ep st))
      $ seed $ trace $ trace_jsonl $ trace_chrome $ batch $ pipeline $ linger
      $ read_ratio $ lease $ gap_threshold $ groups $ domains $ exec_par
      $ storage_arg ~unit_:"machine")

(* ------------------------------------------------------------------ *)
(* Real multi-process cluster: `node` runs one machine over UDP,      *)
(* `put`/`get` run a one-shot client. Start e.g.                      *)
(*   cheap-paxos node --id 0 --f 1 &                                  *)
(*   cheap-paxos node --id 1 --f 1 &                                  *)
(*   cheap-paxos node --id 2 --f 1 &                                  *)
(*   cheap-paxos put greeting hello                                   *)
(* ------------------------------------------------------------------ *)

let base_port_arg =
  Arg.(value & opt int 4600 & info [ "base-port" ] ~docv:"PORT"
         ~doc:"UDP port of machine 0; machine $(i,i) binds base+$(i,i).")

let f_arg =
  Arg.(value & opt int 1 & info [ "f" ] ~docv:"F" ~doc:"Fault tolerance (f+1 mains, f auxes).")

let run_node id f base_port admin_port exec_domains storage =
  let initial = Cheap_paxos.Cheap.initial_config ~f in
  let universe_mains = List.init (f + 1) Fun.id in
  let universe_auxes = List.init f (fun i -> f + 1 + i) in
  let role =
    if List.mem id universe_mains then Cp_engine.Replica.Main
    else if List.mem id universe_auxes then Cp_engine.Replica.Aux
    else begin
      Printf.eprintf "id %d out of range for f=%d (machines 0..%d)\n" id f (2 * f);
      Stdlib.exit 2
    end
  in
  let params =
    { Cp_engine.Params.default with Cp_engine.Params.exec_domains } in
  (* A real process keeps its own WAL root per machine, one subdirectory per
     hosted group (the node's storage factory is keyed by group id): a node
     restarted on the same --storage wal:DIR replays its promises, votes,
     and snapshot instead of rejoining amnesiac. *)
  let node_storage =
    match storage with
    | `Mem -> None
    | `Wal dir ->
      Some
        (fun gid ->
          Cp_storage.Wal.store
            (Filename.concat dir (Filename.concat (Printf.sprintf "m%d" id)
                                    (Printf.sprintf "g%d" gid))))
  in
  let node =
    Cp_netio.Node.create ?admin_port ?storage:node_storage ~exec_domains
      ~port_of:(fun i -> base_port + i)
      ~id_of_port:(fun p -> p - base_port)
      ~id ~seed:(Unix.getpid ())
      ~build:(fun ctx ->
        (* The applier runs on the process-shared pool, distinct from the
           node's private dispatch pool, so a handler fanning a window out
           never waits on its own worker. *)
        let exec =
          if role = Cp_engine.Replica.Main && exec_domains > 1 then
            Some
              (Cp_exec.Applier.create ~workers:exec_domains
                 ~count:(fun name by -> Cp_sim.Metrics.incr ctx.Cp_sim.Engine.metrics ~by name)
                 ~conflict_keys:Cp_smr.Kv.conflict_keys ())
          else None
        in
        let r =
          Cp_engine.Replica.create ?exec ctx ~role ~policy:Cheap_paxos.Cheap.policy
            ~params ~initial ~universe_mains ~universe_auxes
            ~app:(module Cp_smr.Kv)
        in
        Cp_engine.Replica.handlers r)
      ()
  in
  Printf.printf "machine %d (%s) serving on udp/127.0.0.1:%d%s%s — ctrl-c to stop\n%!" id
    (match role with Cp_engine.Replica.Main -> "main" | Aux -> "auxiliary")
    (base_port + id)
    (match admin_port with
    | Some p -> Printf.sprintf ", admin http on tcp/127.0.0.1:%d" p
    | None -> "")
    (if exec_domains > 1 then
       Printf.sprintf ", parallel dispatch+apply on %d domains" exec_domains
     else "");
  (match storage with
  | `Mem -> ()
  | `Wal dir ->
    Printf.printf "durable storage: wal at %s/m%d (replayed on restart)\n%!" dir id);
  let rec forever () =
    Cp_netio.Node.run_for node 3600.;
    forever ()
  in
  forever ()

let node_cmd =
  let doc = "Run one machine of a real UDP cluster (replicated KV store)." in
  let id = Arg.(required & opt (some int) None & info [ "id" ] ~docv:"ID" ~doc:"Machine id.") in
  let admin_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "admin-port" ] ~docv:"PORT"
          ~doc:
            "Also serve a plain-HTTP admin endpoint on tcp/$(docv): GET /healthz, \
             /metrics (Prometheus text, including the pipeline profiler), and \
             /timeline (this node's event ring as Chrome trace-event JSON).")
  in
  let exec_domains =
    Arg.(
      value
      & opt int 0
      & info [ "exec-domains" ] ~docv:"N"
          ~doc:
            "With $(docv) > 1: dispatch this node's groups on a private pool of \
             $(docv) worker domains and (on mains) execute chosen commands through \
             the conflict-aware parallel applier at that width. Default 0 keeps \
             the single-mutex runtime.")
  in
  Cmd.v (Cmd.info "node" ~doc)
    Term.(
      const (fun id f bp ap ed st -> run_node id f bp ap ed st)
      $ id $ f_arg $ base_port_arg $ admin_port $ exec_domains
      $ storage_arg ~unit_:"hosted group")

let run_client_op f base_port op =
  let universe_mains = List.init (f + 1) Fun.id in
  let cell = ref None in
  (* Distinct id per invocation: session state on the replicas is keyed by
     client id, so one-shot clients must not reuse each other's. *)
  let client_id = 1000 + (Unix.getpid () mod 10_000) in
  let node =
    Cp_netio.Node.create
      ~port_of:(fun i -> base_port + i)
      ~id_of_port:(fun p -> p - base_port)
      ~id:client_id ~seed:(Unix.getpid ())
      ~build:(fun ctx ->
        let c =
          Cp_smr.Client.create ctx ~mains:universe_mains ~timeout:0.3
            ~ops:(fun seq -> if seq = 1 then Some op else None)
            ()
        in
        cell := Some c;
        Cp_smr.Client.handlers c)
      ()
  in
  let client = Option.get !cell in
  let deadline = Unix.gettimeofday () +. 10. in
  while
    (not (Cp_netio.Node.with_lock node (fun () -> Cp_smr.Client.is_finished client)))
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.02
  done;
  let code =
    match Cp_netio.Node.with_lock node (fun () -> Cp_smr.Client.history client) with
    | [ (_, _, _, result) ] ->
      print_endline result;
      0
    | _ ->
      prerr_endline "timed out: is the cluster running?";
      1
  in
  Cp_netio.Node.shutdown node;
  code

let put_cmd =
  let doc = "Write a key on a running cluster (see $(b,node))." in
  let key = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY") in
  let value = Arg.(required & pos 1 (some string) None & info [] ~docv:"VALUE") in
  Cmd.v (Cmd.info "put" ~doc)
    Term.(
      const (fun f bp k v -> Stdlib.exit (run_client_op f bp (Cp_smr.Kv.put k v)))
      $ f_arg $ base_port_arg $ key $ value)

let get_cmd =
  let doc = "Read a key from a running cluster (see $(b,node))." in
  let key = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY") in
  Cmd.v (Cmd.info "get" ~doc)
    Term.(
      const (fun f bp k -> Stdlib.exit (run_client_op f bp (Cp_smr.Kv.get k)))
      $ f_arg $ base_port_arg $ key)

(* ------------------------------------------------------------------ *)
(* Model checking from the command line                                 *)
(* ------------------------------------------------------------------ *)

(* Deep check: bounded BFS over the real Core.step (see Cp_mc.Mc_replica).
   The JSON summary is what CI uploads as its state-count artifact. *)
let run_mc_deep ~max_states ~json =
  let module D = Cp_mc.Mc_replica in
  Printf.printf "deep check: real replica core, message-soup semantics (f=1):\n%!";
  let spec = D.default_spec in
  let r = D.check ~max_states ~spec () in
  Printf.printf "  %d states explored (depth %d): %s\n" r.D.states r.D.max_depth
    (match r.D.violation with
    | None ->
      if r.D.states >= max_states then "no violation within the search budget"
      else "invariant holds in every reachable state"
    | Some why -> "VIOLATION: " ^ why);
  (match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\"checker\":\"mc_replica\",\"states\":%d,\"max_depth\":%d,\"max_states\":%d,\"n_commands\":%d,\"max_ticks\":%d,\"violation\":%s}\n"
      r.D.states r.D.max_depth max_states spec.D.n_commands spec.D.max_ticks
      (match r.D.violation with
      | None -> "null"
      | Some why -> Printf.sprintf "%S" why);
    close_out oc;
    Printf.printf "wrote %s\n" path);
  if r.D.violation = None && r.D.states > 0 then 0 else 1

let run_mc f broken =
  let module Mc = Cp_mc.Mc in
  let module M = Cp_mc.Mc_multi in
  Printf.printf "single-decree quorum core (f=%d, 2 competing proposers)%s:\n" f
    (if broken then ", BROKEN quorums" else "");
  let quorums =
    if broken then [ List.init f Fun.id; List.init (f + 1) (fun i -> f + i) ]
    else Mc.cheap_quorums ~f
  in
  let r =
    Mc.check { Mc.n_acceptors = (2 * f) + 1; quorums; proposals = [ (0, 100); (1, 200) ] }
  in
  Printf.printf "  %d states explored (depth %d): %s\n" r.Mc.states r.Mc.max_depth
    (match r.Mc.violation with
    | None -> "agreement holds in every reachable state"
    | Some why -> "VIOLATION: " ^ why);
  if f = 1 then begin
    Printf.printf "reconfiguration window (two instances, alpha=1)%s:\n"
      (if broken then ", assumed-config shortcut" else "");
    let discipline = if broken then `Assumed_config else `Derived_config in
    let r2 = M.check { M.proposals = [ (`Reconfig, 10); (`Value 2, 11) ]; discipline } in
    Printf.printf "  %d states explored (depth %d): %s\n" r2.M.states r2.M.max_depth
      (match r2.M.violation with
      | None -> "agreement holds in every reachable state"
      | Some why -> "VIOLATION: " ^ why)
  end;
  match (broken, (r.Mc.violation : string option)) with
  | false, None -> 0
  | false, Some _ -> 1
  | true, _ -> 0

let mc_cmd =
  let doc =
    "Exhaustively model-check the quorum core (and, at f=1, the reconfiguration \
     window). Pass $(b,--broken) to see the counterexamples for a non-intersecting \
     quorum system and the assumed-config shortcut."
  in
  let broken = Arg.(value & flag & info [ "broken" ] ~doc:"Check the broken variants instead.") in
  let deep =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:
            "Check the real replica transition function (Core.step) instead of the \
             abstract models: bounded breadth-first search under message-soup \
             semantics. Ignores $(b,--broken) and $(b,--f).")
  in
  let deep_states =
    Arg.(
      value & opt int 25_000
      & info [ "deep-states" ] ~docv:"N" ~doc:"Search budget (distinct worlds) for $(b,--deep).")
  in
  let deep_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "deep-json" ] ~docv:"FILE"
          ~doc:"Write the $(b,--deep) result (state count, depth, verdict) to $(docv) as JSON.")
  in
  Cmd.v (Cmd.info "mc" ~doc)
    Term.(
      const (fun f broken deep deep_states deep_json ->
          Stdlib.exit
            (if deep then run_mc_deep ~max_states:deep_states ~json:deep_json
             else run_mc f broken))
      $ f_arg $ broken $ deep $ deep_states $ deep_json)

let () =
  let doc = "Cheap Paxos (DSN 2004) reproduction" in
  let info = Cmd.info "cheap-paxos" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info [ experiments_cmd; demo_cmd; node_cmd; put_cmd; get_cmd; mc_cmd ]))
